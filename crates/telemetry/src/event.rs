//! The structured-event vocabulary: tracks, phases, and events.

/// Simulation timestamp (cycles).
pub type Ts = u64;

/// A hardware structure with its own timeline track.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Structure {
    /// The operand staging unit (allocation/eviction traffic).
    Osu,
    /// The register compressor.
    Compressor,
    /// The L1 port serving register traffic.
    L1Port,
    /// The warp schedulers (barrier releases and the like).
    Scheduler,
}

impl Structure {
    /// All structures, in display order.
    pub const ALL: [Structure; 4] = [
        Structure::Osu,
        Structure::Compressor,
        Structure::L1Port,
        Structure::Scheduler,
    ];

    /// Display name for exporters.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Osu => "osu",
            Structure::Compressor => "compressor",
            Structure::L1Port => "l1-port",
            Structure::Scheduler => "scheduler",
        }
    }
}

/// A horizontal lane in the trace: one per warp plus one per structure.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lane {
    /// A hardware warp (SM-local index).
    Warp(u16),
    /// A shared structure.
    Structure(Structure),
}

/// Chrome thread ids reserved for structure lanes start here; warp lanes
/// use their warp index directly.
pub const STRUCTURE_TID_BASE: u64 = 1000;

impl Lane {
    /// Stable numeric id used as the Chrome-trace `tid`.
    pub fn tid(self) -> u64 {
        match self {
            Lane::Warp(w) => u64::from(w),
            Lane::Structure(s) => {
                STRUCTURE_TID_BASE
                    + Structure::ALL.iter().position(|&x| x == s).expect("listed") as u64
            }
        }
    }

    /// Display name for exporters.
    pub fn label(self) -> String {
        match self {
            Lane::Warp(w) => format!("warp {w}"),
            Lane::Structure(s) => s.name().to_string(),
        }
    }
}

/// Where an event lives: a group (the SM) and a lane within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Track {
    /// Group index (the SM); stamped by the recorder.
    pub group: u16,
    /// Lane within the group.
    pub lane: Lane,
}

impl Track {
    /// A warp track (group stamped by the recorder at record time).
    pub fn warp(w: usize) -> Track {
        Track {
            group: 0,
            lane: Lane::Warp(w as u16),
        }
    }

    /// A structure track (group stamped by the recorder at record time).
    pub fn structure(s: Structure) -> Track {
        Track {
            group: 0,
            lane: Lane::Structure(s),
        }
    }
}

/// Event shape, mirroring the Chrome trace-event phases used.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// A span opens on the track (`ph: "B"`).
    Begin,
    /// The innermost open span on the track closes (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
}

/// One argument value attached to an event.
#[derive(Clone, PartialEq, Debug)]
pub enum ArgValue {
    /// An integer (register numbers, region ids, …).
    Int(i64),
    /// A float.
    Float(f64),
    /// A short string (source names, …).
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Int(i64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Int(i64::from(v))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::Float(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured event. Events are only constructed when a recorder is
/// attached, so the allocation in `args` costs nothing on disabled runs.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    /// Timestamp (cycles).
    pub ts: Ts,
    /// Where the event lives.
    pub track: Track,
    /// Taxonomy name (`"preload"`, `"active"`, `"issue"`, …).
    pub name: &'static str,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// Optional key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// An instant event with no arguments.
    pub fn instant(ts: Ts, track: Track, name: &'static str) -> Event {
        Event {
            ts,
            track,
            name,
            phase: Phase::Instant,
            args: Vec::new(),
        }
    }

    /// A span-begin event with no arguments.
    pub fn begin(ts: Ts, track: Track, name: &'static str) -> Event {
        Event {
            ts,
            track,
            name,
            phase: Phase::Begin,
            args: Vec::new(),
        }
    }

    /// A span-end event with no arguments.
    pub fn end(ts: Ts, track: Track, name: &'static str) -> Event {
        Event {
            ts,
            track,
            name,
            phase: Phase::End,
            args: Vec::new(),
        }
    }

    /// Attach an argument (builder style).
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Event {
        self.args.push((key, value.into()));
        self
    }
}
