//! Minimal JSON support for the workspace.
//!
//! The build environment has no network access, so `serde`/`serde_json`
//! are unavailable; this crate provides the small surface the workspace
//! needs instead: a JSON [`Json`] value model, a strict parser and a
//! writer, [`ToJson`]/[`FromJson`] conversion traits, and declarative
//! macros ([`impl_json_struct!`], [`impl_json_enum!`]) that generate
//! field-by-field conversions for plain structs and C-like enums.
//!
//! It is used for two things:
//!
//! - round-tripping configuration structs (`GpuConfig`, `RegLessConfig`,
//!   `RegionConfig`, …) through JSON, and
//! - persisting simulation reports in the experiment harness's
//!   `results/cache/` sweep cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
///
/// Object keys keep their insertion order (serialization is deterministic);
/// lookups are linear, which is fine for the small objects used here.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (also used for unsigned values up to `i64::MAX`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// A new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Look up a field of an object.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{name}`"))),
            other => Err(JsonError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Like [`Json::field`] but returns `None` for a missing field (still
    /// failing on non-objects). Lets readers tolerate older cache entries.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object.
    pub fn field_opt(&self, name: &str) -> Result<Option<&Json>, JsonError> {
        match self {
            Json::Obj(pairs) => Ok(pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            other => Err(JsonError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The value's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Uint(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serialize without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(n * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Float(x) => out.push_str(&format_f64(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

/// `f64` formatting that always round-trips and never loses the fact that
/// the value is a float (integral floats get a `.0`).
fn format_f64(x: f64) -> String {
    if x.is_nan() || x.is_infinite() {
        // JSON has no NaN/Inf; encode as null like serde_json's lossy mode
        // would reject — our writers never produce these, but be safe.
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(JsonError::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits are utf-8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstruct a value.
    ///
    /// # Errors
    ///
    /// Fails when the value has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialize any [`ToJson`] value without whitespace (mirrors
/// `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Serialize any [`ToJson`] value with indentation (mirrors
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parse and convert in one step (mirrors `serde_json::from_str`).
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            #[allow(clippy::cast_lossless, irrefutable_let_patterns)]
            fn to_json(&self) -> Json {
                let v = *self;
                // Irrefutable for the narrow types; u64/usize values above
                // `i64::MAX` keep full precision via the Uint arm.
                if let Ok(i) = i64::try_from(v) {
                    Json::Int(i)
                } else {
                    Json::Uint(v as u64)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| JsonError::new(format!("{} out of range for {}", i, stringify!($t)))),
                    Json::Uint(u) => <$t>::try_from(*u)
                        .map_err(|_| JsonError::new(format!("{} out of range for {}", u, stringify!($t)))),
                    other => Err(JsonError::new(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::Uint(u) => Ok(*u as f64),
            other => Err(JsonError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Default + Copy, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        if items.len() != N {
            return Err(JsonError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!(
                "expected pair, got {}",
                other.kind()
            ))),
        }
    }
}

/// Generate [`ToJson`]/[`FromJson`] for a struct with named public fields,
/// serialized as an object keyed by field name (serde's default layout).
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Point { x: i64, y: i64 }
/// regless_json::impl_json_struct!(Point { x, y });
///
/// let p = Point { x: 3, y: -1 };
/// let text = regless_json::to_string(&p);
/// assert_eq!(text, r#"{"x":3,"y":-1}"#);
/// assert_eq!(regless_json::from_str::<Point>(&text).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($name {
                    $($field: $crate::FromJson::from_json(v.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for a C-like enum, serialized as the
/// variant name string (serde's default layout for unit variants).
///
/// ```
/// #[derive(PartialEq, Debug)]
/// enum Mode { Fast, Slow }
/// regless_json::impl_json_enum!(Mode { Fast, Slow });
///
/// assert_eq!(regless_json::to_string(&Mode::Fast), r#""Fast""#);
/// assert_eq!(regless_json::from_str::<Mode>(r#""Slow""#).unwrap(), Mode::Slow);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($name::$variant => $crate::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match v {
                    $($crate::Json::Str(s) if s == stringify!($variant) => Ok($name::$variant),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant: {:?}", stringify!($name), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Int(-42),
            Json::Uint(u64::MAX),
        ] {
            let text = v.to_string_compact();
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
        let f = Json::Float(1.5e-3);
        assert_eq!(Json::parse(&f.to_string_compact()).unwrap(), f);
        // Integral floats keep their floatness through a round trip.
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = Json::Str("a \"quote\"\nnewline\ttab \\ slash ünïcøde".to_string());
        assert_eq!(Json::parse(&s.to_string_compact()).unwrap(), s);
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(true))]),
            ),
            ("none".into(), Json::Null),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(PartialEq, Debug)]
        struct Demo {
            count: usize,
            scale: f64,
            label: String,
            flags: Vec<bool>,
        }
        impl_json_struct!(Demo {
            count,
            scale,
            label,
            flags
        });

        let d = Demo {
            count: 7,
            scale: 0.25,
            label: "x".into(),
            flags: vec![true, false],
        };
        let text = to_string(&d);
        assert_eq!(from_str::<Demo>(&text).unwrap(), d);
        // Missing fields are reported by name.
        let err = from_str::<Demo>(r#"{"count":7}"#).unwrap_err();
        assert!(err.message.contains("scale"), "{err}");
    }

    #[test]
    fn enum_macro_round_trips() {
        #[derive(PartialEq, Debug)]
        enum Mode {
            Fast,
            Slow,
        }
        impl_json_enum!(Mode { Fast, Slow });
        for m in [Mode::Fast, Mode::Slow] {
            let text = to_string(&m);
            assert_eq!(from_str::<Mode>(&text).unwrap(), m);
        }
        assert!(from_str::<Mode>(r#""Medium""#).is_err());
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 3;
        let text = to_string(&big);
        assert_eq!(from_str::<u64>(&text).unwrap(), big);
    }
}
