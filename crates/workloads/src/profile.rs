//! Parametric kernel generation.
//!
//! Each benchmark is described by a [`Profile`] — register pressure,
//! live-range shapes, memory intensity, control divergence, barriers —
//! and [`generate`] lowers it to a concrete SIMT kernel. The profiles in
//! [`crate::rodinia`] are calibrated to the per-benchmark characteristics
//! the paper reports (working sets in Figure 2, region shapes in Figure 19
//! and Table 2, divergence behaviour in §6.4).

use regless_isa::{Kernel, KernelBuilder, Opcode, Reg};

/// Control-divergence style of a kernel's inner loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Divergence {
    /// No divergent branches.
    None,
    /// A diamond splitting the warp in half (structured divergence).
    HalfWarp,
    /// A diamond on loaded data — effectively random per lane, the
    /// irregular pattern of `bfs`/`heartwall`/`hybridsort`.
    Data,
}

/// A synthetic-benchmark description.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Kernel name.
    pub name: &'static str,
    /// Main-loop trip count.
    pub trips: u32,
    /// Compute segments per loop iteration (each is a run of ALU ops).
    pub segments: usize,
    /// ALU operations per segment.
    pub alu_per_segment: usize,
    /// Target number of concurrently-live temporaries (register pressure).
    pub width: usize,
    /// Global loads per iteration.
    pub loads_per_iter: usize,
    /// Global stores per iteration.
    pub stores_per_iter: usize,
    /// Whether the loop uses shared memory.
    pub shared: bool,
    /// Special-function-unit ops per iteration.
    pub sfu_ops: usize,
    /// Use floating-point ops for the compute segments.
    pub fp: bool,
    /// Divergence style.
    pub divergence: Divergence,
    /// Whether iterations end with a block-wide barrier.
    pub barrier: bool,
    /// Long-lived values computed in the prologue and consumed every
    /// iteration and after the loop (cross-region registers).
    pub persistent: usize,
    /// Scattered (uncoalesced) load addresses.
    pub scattered: bool,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            name: "synthetic",
            trips: 16,
            segments: 1,
            alu_per_segment: 6,
            width: 6,
            loads_per_iter: 1,
            stores_per_iter: 1,
            shared: false,
            sfu_ops: 0,
            fp: false,
            divergence: Divergence::None,
            barrier: false,
            persistent: 2,
            scattered: false,
        }
    }
}

/// Size mask of the simulated data heap (4 MiB): keeps addresses in a
/// cacheable range.
const HEAP_MASK: u32 = 0x3f_ffff;

/// State threaded through generation.
struct Gen {
    b: KernelBuilder,
    tid: Reg,
    base: Reg,
    heap_mask: Reg,
    persistent: Vec<Reg>,
    acc: Reg,
    /// Rotating pool of live temporaries (bounded by `width`).
    live: Vec<Reg>,
    /// Deterministic op-choice counter.
    salt: u32,
}

impl Gen {
    fn pick(&self, k: usize) -> Reg {
        self.live[k % self.live.len()]
    }

    /// Emit one ALU op over the live pool, growing it toward `width`.
    fn alu(&mut self, fp: bool, width: usize) {
        self.salt = self.salt.wrapping_mul(1664525).wrapping_add(1013904223);
        let a = self.pick(self.salt as usize % 7);
        let c = self.pick((self.salt >> 8) as usize % 5 + 1);
        let r = match (fp, self.salt >> 29) {
            (true, 0 | 1) => self.b.fmul(a, c),
            (true, 2 | 3) => {
                let p = self.persistent[(self.salt as usize >> 3) % self.persistent.len().max(1)];
                self.b.ffma(a, c, p)
            }
            (true, _) => self.b.fadd(a, c),
            (false, 0 | 1) => self.b.imul(a, c),
            (false, 2) => self.b.xor(a, c),
            (false, _) => self.b.iadd(a, c),
        };
        self.live.push(r);
        if self.live.len() > width {
            self.live.remove(0);
        }
    }

    /// Fold the live pool into the accumulator (creates liveness seams).
    fn reduce(&mut self) {
        let acc = self.acc;
        for v in self.live.clone() {
            self.b.emit_to(acc, Opcode::IAdd, vec![acc, v]);
        }
        self.live.clear();
        self.live.push(acc);
    }

    /// A load address: coalesced (`base + offset`) or scattered (hashed).
    fn address(&mut self, scattered: bool, offset: u32) -> Reg {
        if scattered {
            let o = self.b.movi(offset | 1);
            let x = self.b.iadd(self.tid, o);
            let h = self.b.sfu(x);
            self.b.and(h, self.heap_mask)
        } else {
            let o = self.b.movi(offset);
            self.b.iadd(self.base, o)
        }
    }
}

/// Lower a profile to a kernel.
///
/// The generated kernel always terminates: the loop index is compared
/// against a constant trip count with a uniform branch.
///
/// # Panics
///
/// Panics if the profile is degenerate (zero trips or zero width) — these
/// are programming errors in a profile table, not data errors.
pub fn generate(p: &Profile) -> Kernel {
    assert!(p.trips > 0 && p.width > 0, "degenerate profile {}", p.name);
    let mut b = KernelBuilder::new(p.name);

    // Prologue: thread id, address base, persistent (long-lived) values.
    let tid = b.thread_idx();
    let four = b.movi(4);
    let base = b.imul(tid, four);
    let heap_mask = b.movi(HEAP_MASK);
    let persistent: Vec<Reg> = (0..p.persistent)
        .map(|i| {
            let c = b.movi(0x100 + i as u32 * 8);
            b.iadd(tid, c) // stride-1 values: realistically compressible
        })
        .collect();
    let i = b.movi(0);
    let n = b.movi(p.trips);
    let acc = b.movi(0);

    let head = b.new_block();
    let done = b.new_block();
    b.jmp(head);
    b.select(head);

    let mut g = Gen {
        b,
        tid,
        base,
        heap_mask,
        persistent,
        acc,
        live: vec![acc],
        salt: 0x2545,
    };

    // Loads feed the live pool.
    let mut loaded = Vec::new();
    for l in 0..p.loads_per_iter {
        let addr = g.address(p.scattered, (l as u32) * 0x80);
        let v = g.b.ld_global(addr);
        loaded.push(v);
        g.live.push(v);
    }
    if p.shared {
        let sv = g.b.ld_shared(g.tid);
        g.live.push(sv);
    }
    for _ in 0..p.sfu_ops {
        let a = g.pick(1);
        let s = g.b.sfu(a);
        g.live.push(s);
    }

    // Compute segments with a reduction seam between them. Only the last
    // segment runs at the profile's full width: real kernels hold a few
    // values most of the time and spike occasionally (Figure 19's large
    // standard deviations), so sustained maximal pressure would be
    // unrepresentative.
    for seg in 0..p.segments.max(1) {
        let seg_width = if seg + 1 == p.segments.max(1) {
            p.width
        } else {
            (p.width / 2).clamp(3, 8)
        };
        for _ in 0..p.alu_per_segment {
            g.alu(p.fp, seg_width);
        }
        if seg + 1 < p.segments {
            g.reduce();
        }
    }

    // Optional divergence diamond.
    match p.divergence {
        Divergence::None => {}
        Divergence::HalfWarp | Divergence::Data => {
            let t_bb = g.b.new_block();
            let e_bb = g.b.new_block();
            let j_bb = g.b.new_block();
            let cond = match p.divergence {
                Divergence::HalfWarp => {
                    let lane = g.b.lane_idx();
                    let half = g.b.movi(16);
                    g.b.setlt(lane, half)
                }
                _ => {
                    let v = loaded.first().copied().unwrap_or(g.tid);
                    let one = g.b.movi(1);
                    g.b.and(v, one)
                }
            };
            g.b.bra(cond, t_bb, e_bb);
            let merged = g.acc;
            g.b.select(t_bb);
            let a = g.pick(0);
            let x = g.b.iadd(a, a);
            g.b.emit_to(merged, Opcode::IAdd, vec![merged, x]);
            g.b.jmp(j_bb);
            g.b.select(e_bb);
            let c = g.pick(1);
            let y = g.b.imul(c, c);
            g.b.emit_to(merged, Opcode::IAdd, vec![merged, y]);
            g.b.jmp(j_bb);
            g.b.select(j_bb);
        }
    }

    // Tail: reduce, store, advance, loop.
    g.reduce();
    for s in 0..p.stores_per_iter {
        let addr = g.address(false, 0x40 + (s as u32) * 0x80);
        g.b.st_global(g.acc, addr);
    }
    if p.shared {
        g.b.st_shared(g.acc, g.tid);
    }
    if p.barrier {
        g.b.bar();
    }
    let one = g.b.movi(1);
    g.b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = g.b.setlt(i, n);
    g.b.bra(c, head, done);

    // Epilogue: fold the persistent values (they live across the loop).
    g.b.select(done);
    for pv in g.persistent.clone() {
        g.b.emit_to(g.acc, Opcode::IAdd, vec![g.acc, pv]);
    }
    let out_addr = g.b.iadd(g.base, g.heap_mask);
    g.b.st_global(g.acc, out_addr);
    g.b.exit();

    g.b.finish()
        .unwrap_or_else(|e| panic!("profile {} generated invalid kernel: {e}", p.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};

    #[test]
    fn default_profile_generates_valid_kernel() {
        let k = generate(&Profile::default());
        assert!(k.num_insns() > 20);
        assert!(compile(&k, &RegionConfig::default()).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Profile {
            width: 8,
            fp: true,
            ..Profile::default()
        };
        assert_eq!(generate(&p), generate(&p));
    }

    #[test]
    fn generation_is_byte_identical() {
        // Stronger than structural equality: the serialized text of every
        // generated kernel must be byte-for-byte stable across calls. The
        // serving layer's request-coalescing fingerprint hashes kernel
        // identity, so any nondeterminism here would silently split
        // identical requests into separate simulations.
        let profiles = [
            Profile::default(),
            Profile {
                width: 3,
                ..Profile::default()
            },
            Profile {
                width: 12,
                fp: true,
                ..Profile::default()
            },
            Profile {
                segments: 5,
                loads_per_iter: 3,
                divergence: Divergence::Data,
                ..Profile::default()
            },
        ];
        for p in &profiles {
            let first = regless_isa::text::format_kernel(&generate(p));
            for _ in 0..3 {
                assert_eq!(
                    regless_isa::text::format_kernel(&generate(p)),
                    first,
                    "profile {p:?} generated different kernel text"
                );
            }
        }
        for name in crate::rodinia::NAMES {
            let first = regless_isa::text::format_kernel(&crate::rodinia::kernel(name));
            assert_eq!(
                regless_isa::text::format_kernel(&crate::rodinia::kernel(name)),
                first,
                "rodinia/{name} is not byte-stable"
            );
        }
    }

    #[test]
    fn width_controls_pressure() {
        let narrow = generate(&Profile {
            width: 3,
            alu_per_segment: 12,
            ..Profile::default()
        });
        let wide = generate(&Profile {
            width: 20,
            alu_per_segment: 24,
            ..Profile::default()
        });
        let max_live = |k: &Kernel| {
            let c = compile(
                k,
                &RegionConfig {
                    max_regs_per_region: 64,
                    ..Default::default()
                },
            )
            .unwrap();
            c.liveness()
                .live_counts(k)
                .into_iter()
                .map(|(_, n)| n)
                .max()
                .unwrap()
        };
        assert!(max_live(&wide) > max_live(&narrow) + 5);
    }

    #[test]
    fn divergent_profiles_have_diamonds() {
        let k = generate(&Profile {
            divergence: Divergence::HalfWarp,
            ..Profile::default()
        });
        // More blocks than the straight-line version.
        let s = generate(&Profile::default());
        assert!(k.num_blocks() > s.num_blocks());
    }

    #[test]
    fn barrier_profile_emits_barriers() {
        let k = generate(&Profile {
            barrier: true,
            ..Profile::default()
        });
        let has_bar = k.iter_insns().any(|(_, i)| matches!(i.op(), Opcode::Bar));
        assert!(has_bar);
    }

    #[test]
    fn memory_profiles_emit_loads() {
        let k = generate(&Profile {
            loads_per_iter: 3,
            ..Profile::default()
        });
        let loads = k.iter_insns().filter(|(_, i)| i.is_global_load()).count();
        assert!(loads >= 3);
    }
}
