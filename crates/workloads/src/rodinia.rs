//! Synthetic stand-ins for the 21 Rodinia benchmarks of the paper's
//! evaluation.
//!
//! The real Rodinia kernels cannot be compiled here (no CUDA toolchain or
//! `ptxas`); instead, each benchmark gets a [`Profile`] calibrated to the
//! characteristics the paper reports for it — register working set
//! (Figure 2), region sizes (Table 2), preloads and live registers per
//! region (Figure 19), control-flow and memory behaviour (§6.4). RegLess's
//! behaviour is driven by exactly these lifetime/divergence/memory
//! structures, so matching them preserves each benchmark's *shape* in the
//! reproduced figures.

use crate::profile::{generate, Divergence, Profile};
use regless_isa::Kernel;

/// Names of all benchmarks, in the paper's (alphabetical) order.
pub const NAMES: [&str; 21] = [
    "b+tree",
    "backprop",
    "bfs",
    "dwt2d",
    "gaussian",
    "heartwall",
    "hotspot",
    "hybridsort",
    "kmeans",
    "lavaMD",
    "leukocyte",
    "lud",
    "mummergpu",
    "myocyte",
    "nn",
    "nw",
    "particle_filter",
    "pathfinder",
    "srad_v1",
    "srad_v2",
    "streamcluster",
];

/// The profile of one benchmark.
///
/// # Panics
///
/// Panics if `name` is not one of [`NAMES`].
pub fn profile(name: &str) -> Profile {
    let d = Profile::default();
    match name {
        // Irregular tree search: tiny regions, scattered loads, data-
        // dependent branching, small working set.
        "b+tree" => Profile {
            name: "b+tree",
            trips: 24,
            alu_per_segment: 4,
            width: 4,
            loads_per_iter: 2,
            divergence: Divergence::Data,
            scattered: true,
            persistent: 2,
            ..d
        },
        // Neural-net back propagation: shared memory, barrier, moderate fp.
        "backprop" => Profile {
            name: "backprop",
            trips: 32,
            alu_per_segment: 8,
            width: 6,
            shared: true,
            fp: true,
            barrier: true,
            persistent: 2,
            ..d
        },
        // Breadth-first search: the memory-bound extreme — 3-instruction
        // regions, heavy divergence, almost no compute.
        "bfs" => Profile {
            name: "bfs",
            trips: 24,
            alu_per_segment: 2,
            width: 3,
            loads_per_iter: 2,
            divergence: Divergence::Data,
            scattered: true,
            persistent: 1,
            ..d
        },
        // Wavelet transform: deep fp expressions, 20+ live registers.
        "dwt2d" => Profile {
            name: "dwt2d",
            trips: 16,
            segments: 2,
            alu_per_segment: 14,
            width: 18,
            loads_per_iter: 2,
            stores_per_iter: 2,
            fp: true,
            persistent: 6,
            ..d
        },
        // Gaussian elimination: many registers live across global loads.
        "gaussian" => Profile {
            name: "gaussian",
            trips: 24,
            alu_per_segment: 10,
            width: 12,
            loads_per_iter: 3,
            fp: true,
            persistent: 8,
            ..d
        },
        // Heart-wall tracking: complex control flow over loaded data.
        "heartwall" => Profile {
            name: "heartwall",
            trips: 24,
            segments: 2,
            alu_per_segment: 5,
            width: 6,
            loads_per_iter: 2,
            sfu_ops: 1,
            fp: true,
            divergence: Divergence::Data,
            persistent: 3,
            ..d
        },
        // Thermal stencil: high pressure, shared memory, barrier.
        "hotspot" => Profile {
            name: "hotspot",
            trips: 24,
            segments: 2,
            alu_per_segment: 12,
            width: 20,
            loads_per_iter: 2,
            shared: true,
            fp: true,
            barrier: true,
            persistent: 5,
            ..d
        },
        // Bucket/merge sort: divergent, bursty memory, barriers.
        "hybridsort" => Profile {
            name: "hybridsort",
            trips: 24,
            segments: 2,
            alu_per_segment: 5,
            width: 6,
            loads_per_iter: 2,
            stores_per_iter: 2,
            shared: true,
            divergence: Divergence::Data,
            barrier: true,
            scattered: true,
            persistent: 2,
            ..d
        },
        // Clustering: streaming loads, light compute.
        "kmeans" => Profile {
            name: "kmeans",
            trips: 32,
            alu_per_segment: 4,
            width: 5,
            loads_per_iter: 2,
            fp: true,
            persistent: 2,
            ..d
        },
        // Molecular dynamics: long compute regions, many registers, SFU.
        "lavaMD" => Profile {
            name: "lavaMD",
            trips: 16,
            segments: 2,
            alu_per_segment: 10,
            width: 14,
            loads_per_iter: 2,
            shared: true,
            sfu_ops: 2,
            fp: true,
            barrier: true,
            persistent: 6,
            ..d
        },
        // Cell tracking: fp compute with SFU.
        "leukocyte" => Profile {
            name: "leukocyte",
            trips: 24,
            segments: 2,
            alu_per_segment: 9,
            width: 10,
            sfu_ops: 2,
            fp: true,
            persistent: 4,
            ..d
        },
        // LU decomposition: the compute-region extreme (16 insns/region).
        "lud" => Profile {
            name: "lud",
            trips: 12,
            segments: 2,
            alu_per_segment: 18,
            width: 12,
            shared: true,
            fp: true,
            barrier: true,
            persistent: 4,
            ..d
        },
        // Sequence matching: divergent scattered lookups.
        "mummergpu" => Profile {
            name: "mummergpu",
            trips: 24,
            alu_per_segment: 5,
            width: 5,
            loads_per_iter: 2,
            divergence: Divergence::Data,
            scattered: true,
            persistent: 2,
            ..d
        },
        // ODE solver: the huge-expression extreme (20+ live, big regions).
        "myocyte" => Profile {
            name: "myocyte",
            trips: 12,
            segments: 3,
            alu_per_segment: 16,
            width: 18,
            sfu_ops: 3,
            fp: true,
            persistent: 8,
            ..d
        },
        // k-nearest neighbours: small kernel, a few fp ops per point.
        "nn" => Profile {
            name: "nn",
            trips: 16,
            alu_per_segment: 6,
            width: 5,
            sfu_ops: 1,
            fp: true,
            persistent: 2,
            ..d
        },
        // Needleman-Wunsch: integer compute on shared tiles.
        "nw" => Profile {
            name: "nw",
            trips: 16,
            segments: 2,
            alu_per_segment: 12,
            width: 8,
            shared: true,
            barrier: true,
            persistent: 3,
            ..d
        },
        // Particle filter: the Figure 5 example — mixed expressions with
        // clear liveness seams, structured divergence.
        "particle_filter" => Profile {
            name: "particle_filter",
            trips: 16,
            segments: 2,
            alu_per_segment: 10,
            width: 12,
            loads_per_iter: 2,
            sfu_ops: 1,
            fp: true,
            persistent: 4,
            ..d
        },
        // Grid traversal: shared-memory stencil with barriers.
        "pathfinder" => Profile {
            name: "pathfinder",
            trips: 24,
            alu_per_segment: 5,
            width: 6,
            shared: true,
            barrier: true,
            persistent: 2,
            ..d
        },
        // Diffusion (v1): fp stencil.
        "srad_v1" => Profile {
            name: "srad_v1",
            trips: 24,
            segments: 2,
            alu_per_segment: 9,
            width: 10,
            loads_per_iter: 2,
            sfu_ops: 1,
            fp: true,
            persistent: 4,
            ..d
        },
        // Diffusion (v2): fp stencil, slightly lighter.
        "srad_v2" => Profile {
            name: "srad_v2",
            trips: 24,
            segments: 2,
            alu_per_segment: 8,
            width: 8,
            loads_per_iter: 2,
            sfu_ops: 1,
            fp: true,
            persistent: 3,
            ..d
        },
        // Streaming clustering: small regions, streaming loads.
        "streamcluster" => Profile {
            name: "streamcluster",
            trips: 32,
            alu_per_segment: 3,
            width: 4,
            loads_per_iter: 2,
            fp: true,
            persistent: 1,
            ..d
        },
        other => panic!("unknown benchmark {other:?}"),
    }
}

/// Generate one benchmark kernel by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`NAMES`].
pub fn kernel(name: &str) -> Kernel {
    generate(&profile(name))
}

/// All 21 benchmark kernels, in [`NAMES`] order.
pub fn all() -> Vec<Kernel> {
    NAMES.iter().map(|n| kernel(n)).collect()
}

macro_rules! named_kernels {
    ($($fn_name:ident => $bench:literal),* $(,)?) => {
        $(
            #[doc = concat!("The `", $bench, "` benchmark kernel.")]
            pub fn $fn_name() -> Kernel {
                kernel($bench)
            }
        )*
    };
}

named_kernels! {
    b_plus_tree => "b+tree",
    backprop => "backprop",
    bfs => "bfs",
    dwt2d => "dwt2d",
    gaussian => "gaussian",
    heartwall => "heartwall",
    hotspot => "hotspot",
    hybridsort => "hybridsort",
    kmeans => "kmeans",
    lava_md => "lavaMD",
    leukocyte => "leukocyte",
    lud => "lud",
    mummergpu => "mummergpu",
    myocyte => "myocyte",
    nn => "nn",
    nw => "nw",
    particle_filter => "particle_filter",
    pathfinder => "pathfinder",
    srad_v1 => "srad_v1",
    srad_v2 => "srad_v2",
    streamcluster => "streamcluster",
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};

    #[test]
    fn all_benchmarks_generate_and_compile() {
        for name in NAMES {
            let k = kernel(name);
            assert_eq!(k.name(), name);
            let compiled =
                compile(&k, &RegionConfig::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(compiled.regions().len() >= 2, "{name} should have regions");
        }
    }

    #[test]
    fn all_returns_21_kernels() {
        let ks = all();
        assert_eq!(ks.len(), 21);
        let names: Vec<&str> = ks.iter().map(|k| k.name()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn named_helpers_match_table() {
        assert_eq!(b_plus_tree().name(), "b+tree");
        assert_eq!(lava_md().name(), "lavaMD");
        assert_eq!(particle_filter().name(), "particle_filter");
    }

    #[test]
    fn pressure_ordering_matches_paper() {
        // dwt2d and myocyte are the paper's high-pressure benchmarks; bfs
        // the low-pressure one (Figures 2 and 19).
        let max_live = |name: &str| {
            let k = kernel(name);
            let c = compile(
                &k,
                &RegionConfig {
                    max_regs_per_region: 64,
                    ..RegionConfig::default()
                },
            )
            .unwrap();
            c.liveness()
                .live_counts(&k)
                .into_iter()
                .map(|(_, n)| n)
                .max()
                .unwrap()
        };
        let bfs = max_live("bfs");
        let dwt = max_live("dwt2d");
        let myo = max_live("myocyte");
        assert!(dwt > bfs + 10, "dwt2d {dwt} vs bfs {bfs}");
        assert!(myo > bfs + 10, "myocyte {myo} vs bfs {bfs}");
    }

    #[test]
    fn region_size_ordering_matches_table2() {
        // lud has the largest regions (16 insns avg); bfs the smallest
        // (3.3).
        let mean_len = |name: &str| {
            let k = kernel(name);
            compile(&k, &RegionConfig::default())
                .unwrap()
                .mean_region_len()
        };
        assert!(mean_len("lud") > mean_len("bfs"));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = profile("not-a-benchmark");
    }
}

#[cfg(test)]
mod characteristic_tests {
    use super::*;
    use regless_isa::KernelStats;

    /// The profile table must actually produce the per-benchmark character
    /// the paper describes (§6.4, Table 2).
    #[test]
    fn memory_intensity_ordering() {
        let mi = |n: &str| KernelStats::of(&kernel(n)).memory_intensity();
        // bfs is the memory-bound extreme; lud the compute extreme.
        assert!(
            mi("bfs") > mi("lud") * 2.0,
            "bfs {} vs lud {}",
            mi("bfs"),
            mi("lud")
        );
        assert!(mi("streamcluster") > mi("myocyte"));
    }

    #[test]
    fn barrier_benchmarks_have_barriers() {
        for name in [
            "backprop",
            "hotspot",
            "hybridsort",
            "lavaMD",
            "lud",
            "nw",
            "pathfinder",
        ] {
            assert!(
                KernelStats::of(&kernel(name)).barriers > 0,
                "{name} should use barriers"
            );
        }
        for name in ["bfs", "gaussian", "nn"] {
            assert_eq!(KernelStats::of(&kernel(name)).barriers, 0, "{name}");
        }
    }

    #[test]
    fn divergent_benchmarks_have_more_branches() {
        let br = |n: &str| {
            let s = KernelStats::of(&kernel(n));
            s.branches
        };
        // Data-divergent benchmarks get the diamond: 2 conditional branches
        // (diamond + loop) vs 1 (loop only).
        assert!(br("heartwall") > br("kmeans"));
        assert!(br("hybridsort") > br("nn"));
    }

    #[test]
    fn fp_benchmarks_use_fp_units() {
        for name in ["dwt2d", "leukocyte", "myocyte", "srad_v1"] {
            assert!(KernelStats::of(&kernel(name)).fp_alu > 0, "{name}");
        }
    }

    #[test]
    fn all_benchmarks_loop() {
        for name in NAMES {
            assert!(KernelStats::of(&kernel(name)).has_loop(), "{name}");
        }
    }
}
