//! Synthetic SIMT workloads for the RegLess evaluation.
//!
//! The paper evaluates on the Rodinia suite compiled through `ptxas`;
//! without a CUDA toolchain this crate substitutes **synthetic kernels
//! generated from per-benchmark profiles** ([`Profile`]) that reproduce
//! the structural properties RegLess is sensitive to: register-lifetime
//! shapes, live-range pressure, control divergence, memory intensity, and
//! barrier placement. One kernel is provided per Rodinia benchmark (see
//! [`rodinia`]), plus the generic generator for custom experiments.
//!
//! ```
//! use regless_workloads::rodinia;
//!
//! let kernels = rodinia::all();
//! assert_eq!(kernels.len(), 21);
//! assert_eq!(rodinia::hotspot().name(), "hotspot");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
mod profile;
pub mod rodinia;

pub use profile::{generate, Divergence, Profile};

/// A register-hungry kernel for the oversubscription study (paper §7):
/// enough architectural registers per thread that a conventional register
/// file must throttle occupancy, while RegLess — which stores only live
/// values — keeps every warp resident.
pub fn high_pressure_kernel() -> regless_isa::Kernel {
    generate(&Profile {
        name: "high_pressure",
        trips: 12,
        segments: 3,
        alu_per_segment: 20,
        width: 20,
        loads_per_iter: 1,
        fp: true,
        sfu_ops: 2,
        persistent: 14,
        ..Profile::default()
    })
}
