//! Hand-written microbenchmarks.
//!
//! Unlike the profile-generated Rodinia stand-ins, these kernels are built
//! instruction by instruction to isolate one architectural behaviour each:
//! streaming bandwidth, dependent-load latency (pointer chasing), shared-
//! memory tiling with barriers, reduction trees, and maximal divergence.
//! They are used by the extension studies and as sharp-edged test inputs.

use regless_isa::{Kernel, KernelBuilder, Opcode, Reg};

/// Pure streaming: load, add, store, repeat — one long-latency access per
/// three instructions, fully coalesced.
pub fn streaming(trips: u32) -> Kernel {
    let mut b = KernelBuilder::new("micro_streaming");
    let body = b.new_block();
    let done = b.new_block();
    let tid = b.thread_idx();
    let four = b.movi(4);
    let mut_addr = b.imul(tid, four);
    let stride = b.movi(0x1000);
    let i = b.movi(0);
    let n = b.movi(trips);
    let acc = b.movi(0);
    b.jmp(body);
    b.select(body);
    let v = b.ld_global(mut_addr);
    b.emit_to(acc, Opcode::IAdd, vec![acc, v]);
    b.st_global(acc, mut_addr);
    b.emit_to(mut_addr, Opcode::IAdd, vec![mut_addr, stride]);
    let one = b.movi(1);
    b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = b.setlt(i, n);
    b.bra(c, body, done);
    b.select(done);
    b.exit();
    b.finish().expect("valid kernel")
}

/// Pointer chasing: each load's address depends on the previous load's
/// value — zero memory-level parallelism, the worst case for latency
/// hiding and the best case for RegLess's load/use region splitting.
pub fn pointer_chase(trips: u32) -> Kernel {
    let mut b = KernelBuilder::new("micro_pointer_chase");
    let body = b.new_block();
    let done = b.new_block();
    let tid = b.thread_idx();
    let mask = b.movi(0x3f_ffff);
    let ptr = b.and(tid, mask);
    let i = b.movi(0);
    let n = b.movi(trips);
    b.jmp(body);
    b.select(body);
    let next = b.ld_global(ptr);
    let bounded = b.and(next, mask);
    b.emit_to(ptr, Opcode::Mov, vec![bounded]);
    let one = b.movi(1);
    b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = b.setlt(i, n);
    b.bra(c, body, done);
    b.select(done);
    b.st_global(ptr, ptr);
    b.exit();
    b.finish().expect("valid kernel")
}

/// Shared-memory tile: load a tile, barrier, compute over it, barrier,
/// store — the bulk-synchronous pattern of pathfinder/nw/lud.
pub fn shared_tile(trips: u32) -> Kernel {
    let mut b = KernelBuilder::new("micro_shared_tile");
    let body = b.new_block();
    let done = b.new_block();
    let tid = b.thread_idx();
    let four = b.movi(4);
    let addr = b.imul(tid, four);
    let i = b.movi(0);
    let n = b.movi(trips);
    let acc = b.movi(0);
    b.jmp(body);
    b.select(body);
    let v = b.ld_global(addr);
    b.st_shared(v, tid);
    b.bar();
    let left = b.ld_shared(tid);
    let right = b.ld_shared(acc);
    let s = b.iadd(left, right);
    b.emit_to(acc, Opcode::IAdd, vec![acc, s]);
    b.bar();
    b.st_global(acc, addr);
    let one = b.movi(1);
    b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = b.setlt(i, n);
    b.bra(c, body, done);
    b.select(done);
    b.exit();
    b.finish().expect("valid kernel")
}

/// A register-resident reduction tree: log-depth pairwise sums over 16
/// values — maximal short-lived interior registers, zero memory traffic in
/// the inner expression.
pub fn reduction_tree() -> Kernel {
    let mut b = KernelBuilder::new("micro_reduction_tree");
    let tid = b.thread_idx();
    let mut level: Vec<Reg> = (0..16)
        .map(|k| {
            let c = b.movi(0x10 + k);
            b.iadd(tid, c)
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| b.iadd(pair[0], pair[1]))
            .collect();
    }
    b.st_global(level[0], tid);
    b.exit();
    b.finish().expect("valid kernel")
}

/// Per-lane divergence: a data-dependent diamond nested inside a loop, with
/// effectively random masks — the stress case for soft definitions and the
/// SIMT stack.
pub fn divergence_storm(trips: u32) -> Kernel {
    let mut b = KernelBuilder::new("micro_divergence_storm");
    let head = b.new_block();
    let t_bb = b.new_block();
    let e_bb = b.new_block();
    let tail = b.new_block();
    let done = b.new_block();
    let tid = b.thread_idx();
    let mask = b.movi(0x3f_ffff);
    let i = b.movi(0);
    let n = b.movi(trips);
    let acc = b.movi(0);
    b.jmp(head);
    b.select(head);
    let seed = b.iadd(tid, i);
    let h = b.sfu(seed);
    let addr = b.and(h, mask);
    let v = b.ld_global(addr);
    let one = b.movi(1);
    let bit = b.and(v, one);
    b.bra(bit, t_bb, e_bb);
    b.select(t_bb);
    let x = b.iadd(v, tid);
    b.emit_to(acc, Opcode::IAdd, vec![acc, x]);
    b.jmp(tail);
    b.select(e_bb);
    let y = b.xor(v, tid);
    b.emit_to(acc, Opcode::IAdd, vec![acc, y]);
    b.jmp(tail);
    b.select(tail);
    b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = b.setlt(i, n);
    b.bra(c, head, done);
    b.select(done);
    b.st_global(acc, addr);
    b.exit();
    b.finish().expect("valid kernel")
}

/// Nested divergence: a diamond inside each arm of a diamond, two levels
/// of SIMT-stack pressure with values crossing every reconvergence point.
pub fn nested_divergence() -> Kernel {
    let mut b = KernelBuilder::new("micro_nested_divergence");
    let outer_t = b.new_block();
    let outer_e = b.new_block();
    let inner_t = b.new_block();
    let inner_e = b.new_block();
    let inner_j = b.new_block();
    let outer_j = b.new_block();
    let lane = b.lane_idx();
    let acc = b.movi(0);
    let half = b.movi(16);
    let c0 = b.setlt(lane, half);
    b.bra(c0, outer_t, outer_e);
    // Outer taken arm contains its own diamond.
    b.select(outer_t);
    let quarter = b.movi(8);
    let c1 = b.setlt(lane, quarter);
    b.bra(c1, inner_t, inner_e);
    b.select(inner_t);
    let x = b.iadd(lane, half);
    b.emit_to(acc, Opcode::IAdd, vec![acc, x]);
    b.jmp(inner_j);
    b.select(inner_e);
    let y = b.imul(lane, quarter);
    b.emit_to(acc, Opcode::IAdd, vec![acc, y]);
    b.jmp(inner_j);
    b.select(inner_j);
    let z = b.iadd(acc, lane);
    b.emit_to(acc, Opcode::Mov, vec![z]);
    b.jmp(outer_j);
    // Outer not-taken arm.
    b.select(outer_e);
    let w = b.xor(lane, half);
    b.emit_to(acc, Opcode::IAdd, vec![acc, w]);
    b.jmp(outer_j);
    b.select(outer_j);
    b.st_global(acc, lane);
    b.exit();
    b.finish().expect("valid kernel")
}

/// All microbenchmarks at default sizes.
pub fn all() -> Vec<Kernel> {
    vec![
        streaming(24),
        pointer_chase(16),
        shared_tile(16),
        reduction_tree(),
        divergence_storm(16),
        nested_divergence(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};

    #[test]
    fn all_micro_kernels_compile() {
        for k in all() {
            let c = compile(&k, &RegionConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(!c.regions().is_empty());
        }
    }

    #[test]
    fn pointer_chase_splits_every_load_from_its_use() {
        let k = pointer_chase(8);
        let c = compile(&k, &RegionConfig::default()).unwrap();
        // The dependent chain forces the load and its use apart.
        for r in c.regions() {
            let insns = &k.block(r.block()).insns()[r.start()..r.end()];
            for (i, insn) in insns.iter().enumerate() {
                if insn.is_global_load() {
                    let d = insn.dst().unwrap();
                    assert!(!insns[i + 1..].iter().any(|u| u.srcs().contains(&d)));
                }
            }
        }
    }

    #[test]
    fn reduction_tree_is_single_region_of_interiors() {
        let k = reduction_tree();
        let c = compile(
            &k,
            &RegionConfig {
                max_regs_per_region: 64,
                ..RegionConfig::default()
            },
        )
        .unwrap();
        assert_eq!(c.regions().len(), 1);
        let r = &c.regions()[0];
        assert!(r.inputs().is_empty(), "everything is produced in-region");
        assert!(r.interior().len() >= 30, "tree temporaries are interior");
    }

    #[test]
    fn divergence_storm_has_soft_definitions() {
        let k = divergence_storm(4);
        let c = compile(&k, &RegionConfig::default()).unwrap();
        assert!(
            c.liveness().soft_defs().count() > 0,
            "divergent accumulator writes must be soft"
        );
    }

    #[test]
    fn shared_tile_barriers_end_regions() {
        let k = shared_tile(4);
        let c = compile(&k, &RegionConfig::default()).unwrap();
        for r in c.regions() {
            let insns = &k.block(r.block()).insns()[r.start()..r.end()];
            for (i, insn) in insns.iter().enumerate() {
                if matches!(insn.op(), regless_isa::Opcode::Bar) {
                    assert_eq!(i, insns.len() - 1);
                }
            }
        }
    }
}
