//! The operand staging unit (paper §5.2).
//!
//! Each scheduler shard owns one OSU of [`NUM_BANKS`] banks. A bank holds
//! 128-byte lines, each staging one (warp, register) value, with a tag
//! store and three allocation lists: **free** (empty), **clean** (evictable,
//! unchanged since last read from memory), and **dirty** (evictable,
//! modified). Allocation takes free lines first, then clean (dropped
//! silently — memory still has the value), then dirty (which must be
//! spilled through the compressor/L1).

use regless_compiler::NUM_BANKS;
use regless_isa::{LaneVec, Reg};
use std::collections::HashMap;

/// Lifecycle state of one OSU line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LineState {
    Free,
    /// Held by an active or preloading region; not evictable.
    Active,
    /// Not referenced by any active region; reusable.
    Evictable,
}

#[derive(Clone, Debug)]
struct Line {
    warp: usize,
    reg: Reg,
    value: LaneVec,
    state: LineState,
    dirty: bool,
    /// Sequence number of the release that made this line evictable; the
    /// clean and dirty lists are FIFO queues (paper Figure 10), so victims
    /// are the *oldest* released lines — recently drained registers stay
    /// staged for their warp's next region.
    released_seq: u64,
}

impl Line {
    fn free() -> Self {
        Line {
            warp: 0,
            reg: Reg(0),
            value: LaneVec::zero(),
            state: LineState::Free,
            dirty: false,
            released_seq: 0,
        }
    }
}

/// A dirty line displaced by an allocation; the caller must spill it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// Owning warp (SM-local index).
    pub warp: usize,
    /// Architectural register.
    pub reg: Reg,
    /// The value to spill.
    pub value: LaneVec,
}

/// The bank a (warp, register) pair maps to: the low bits of their sum
/// (paper §5.2). The warp offset rotates the compiler's per-bank usage
/// vector without changing its shape.
#[inline]
pub fn runtime_bank(warp: usize, reg: Reg) -> usize {
    (warp + reg.index()) % NUM_BANKS
}

#[derive(Clone, Debug)]
struct Bank {
    lines: Vec<Line>,
    tags: HashMap<(usize, Reg), usize>,
}

impl Bank {
    fn new(lines: usize) -> Self {
        Bank {
            lines: vec![Line::free(); lines],
            tags: HashMap::new(),
        }
    }

    fn find_victim(&self) -> Option<(usize, bool)> {
        // free → oldest clean → oldest dirty.
        if let Some(i) = self.lines.iter().position(|l| l.state == LineState::Free) {
            return Some((i, false));
        }
        let oldest = |dirty: bool| {
            self.lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.state == LineState::Evictable && l.dirty == dirty)
                .min_by_key(|(_, l)| l.released_seq)
                .map(|(i, _)| i)
        };
        if let Some(i) = oldest(false) {
            return Some((i, false));
        }
        oldest(true).map(|i| (i, true))
    }
}

/// One shard's operand staging unit.
///
/// ```
/// use regless_core::Osu;
/// use regless_isa::{LaneVec, Reg};
///
/// let mut osu = Osu::new(16);
/// osu.write(0, Reg(3), LaneVec::splat(7));        // active line
/// assert_eq!(osu.read(0, Reg(3)), Some(LaneVec::splat(7)));
/// osu.release(0, Reg(3));                          // evictable (dirty)
/// assert!(osu.promote(0, Reg(3)), "preload hit re-activates it");
/// osu.erase(0, Reg(3));                            // dead: line freed
/// assert!(!osu.contains(0, Reg(3)));
/// ```
#[derive(Clone, Debug)]
pub struct Osu {
    banks: Vec<Bank>,
    lines_per_bank: usize,
    release_seq: u64,
    lines_evicted: u64,
}

/// Outcome of installing a value (write or preload fill).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstallResult {
    /// Whether a fresh line had to be allocated (vs. updating in place).
    pub allocated: bool,
    /// A displaced dirty line that must be spilled, if any.
    pub spilled: Option<EvictedLine>,
    /// A resident *clean* evictable victim was dropped (no spill needed —
    /// the memory hierarchy still holds its value): the victim's
    /// `(warp, reg)`, so the caller can attribute the eviction to capacity
    /// preemption and trace the displaced line.
    pub dropped_clean: Option<(usize, Reg)>,
    /// The allocation failed: every line in the bank is active. The caller
    /// counts this against the reservation model (it should not happen when
    /// budgets are respected).
    pub failed: bool,
}

impl Osu {
    /// An OSU with `lines_per_bank` lines in each of its banks.
    ///
    /// # Panics
    ///
    /// Panics if `lines_per_bank` is zero.
    pub fn new(lines_per_bank: usize) -> Self {
        assert!(lines_per_bank > 0, "OSU banks need at least one line");
        Osu {
            banks: (0..NUM_BANKS).map(|_| Bank::new(lines_per_bank)).collect(),
            lines_per_bank,
            release_seq: 0,
            lines_evicted: 0,
        }
    }

    /// Lines per bank.
    pub fn lines_per_bank(&self) -> usize {
        self.lines_per_bank
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.lines_per_bank * NUM_BANKS
    }

    /// Monotone count of eviction events the OSU itself observed: region
    /// releases (active → evictable), erases of resident lines, and
    /// resident victims displaced by an allocation. The backend attributes
    /// each of these to one `EvictionReason` cause;
    /// the per-cause counts must sum back to this number (a conservation
    /// law the tier-1 tests enforce).
    pub fn lines_evicted(&self) -> u64 {
        self.lines_evicted
    }

    /// Whether the register is resident (any state but free).
    pub fn contains(&self, warp: usize, reg: Reg) -> bool {
        let b = runtime_bank(warp, reg);
        self.banks[b].tags.contains_key(&(warp, reg))
    }

    /// Read a staged value (does not change state).
    pub fn read(&self, warp: usize, reg: Reg) -> Option<LaneVec> {
        let b = runtime_bank(warp, reg);
        let bank = &self.banks[b];
        bank.tags.get(&(warp, reg)).map(|&i| bank.lines[i].value)
    }

    /// Write a value from an executing region: updates in place or
    /// allocates a new **active** line; the line becomes dirty.
    pub fn write(&mut self, warp: usize, reg: Reg, value: LaneVec) -> InstallResult {
        self.install(warp, reg, value, true)
    }

    /// Install a preloaded value: allocates an **active** line marked clean
    /// (the memory hierarchy holds the same value).
    pub fn fill(&mut self, warp: usize, reg: Reg, value: LaneVec) -> InstallResult {
        self.install(warp, reg, value, false)
    }

    fn install(&mut self, warp: usize, reg: Reg, value: LaneVec, dirty: bool) -> InstallResult {
        let b = runtime_bank(warp, reg);
        let bank = &mut self.banks[b];
        if let Some(&i) = bank.tags.get(&(warp, reg)) {
            let line = &mut bank.lines[i];
            line.value = value;
            line.dirty |= dirty;
            line.state = LineState::Active;
            return InstallResult {
                allocated: false,
                spilled: None,
                dropped_clean: None,
                failed: false,
            };
        }
        let Some((victim, victim_dirty)) = bank.find_victim() else {
            return InstallResult {
                allocated: false,
                spilled: None,
                dropped_clean: None,
                failed: true,
            };
        };
        let spilled = if victim_dirty {
            let v = &bank.lines[victim];
            Some(EvictedLine {
                warp: v.warp,
                reg: v.reg,
                value: v.value,
            })
        } else {
            None
        };
        let mut dropped_clean = None;
        if bank.lines[victim].state != LineState::Free {
            let key = (bank.lines[victim].warp, bank.lines[victim].reg);
            bank.tags.remove(&key);
            if !victim_dirty {
                dropped_clean = Some(key);
            }
            self.lines_evicted += 1;
        }
        let bank = &mut self.banks[b];
        bank.lines[victim] = Line {
            warp,
            reg,
            value,
            state: LineState::Active,
            dirty,
            released_seq: 0,
        };
        bank.tags.insert((warp, reg), victim);
        InstallResult {
            allocated: true,
            spilled,
            dropped_clean,
            failed: false,
        }
    }

    /// Promote a resident (evictable) line back to active for a preload
    /// hit. Returns `false` if the register is not resident.
    pub fn promote(&mut self, warp: usize, reg: Reg) -> bool {
        let b = runtime_bank(warp, reg);
        let bank = &mut self.banks[b];
        match bank.tags.get(&(warp, reg)) {
            Some(&i) => {
                bank.lines[i].state = LineState::Active;
                true
            }
            None => false,
        }
    }

    /// Free a line outright (erase annotation / invalidating read).
    /// Returns whether a resident line was actually reclaimed.
    pub fn erase(&mut self, warp: usize, reg: Reg) -> bool {
        let b = runtime_bank(warp, reg);
        let bank = &mut self.banks[b];
        if let Some(i) = bank.tags.remove(&(warp, reg)) {
            bank.lines[i] = Line::free();
            self.lines_evicted += 1;
            true
        } else {
            false
        }
    }

    /// Make a line evictable (region released it); keeps the dirty bit.
    /// Returns whether an *active* line actually transitioned (re-releasing
    /// an already-evictable line is a no-op for eviction accounting).
    pub fn release(&mut self, warp: usize, reg: Reg) -> bool {
        self.release_seq += 1;
        let seq = self.release_seq;
        let b = runtime_bank(warp, reg);
        let bank = &mut self.banks[b];
        if let Some(&i) = bank.tags.get(&(warp, reg)) {
            let transitioned = bank.lines[i].state == LineState::Active;
            bank.lines[i].state = LineState::Evictable;
            bank.lines[i].released_seq = seq;
            if transitioned {
                self.lines_evicted += 1;
            }
            transitioned
        } else {
            false
        }
    }

    /// Release every active line of a warp (drain completion); returns the
    /// released registers.
    pub fn release_warp(&mut self, warp: usize) -> Vec<Reg> {
        self.release_warp_except(warp, |_| false)
    }

    /// Release a warp's active lines except those for which `keep` returns
    /// true (lines with writebacks still in flight stay allocated during a
    /// drain). Returns the released registers.
    pub fn release_warp_except(&mut self, warp: usize, keep: impl Fn(Reg) -> bool) -> Vec<Reg> {
        self.release_seq += 1;
        let seq = self.release_seq;
        let mut released = Vec::new();
        for bank in &mut self.banks {
            for line in &mut bank.lines {
                if line.state == LineState::Active && line.warp == warp && !keep(line.reg) {
                    line.state = LineState::Evictable;
                    line.released_seq = seq;
                    released.push(line.reg);
                }
            }
        }
        self.lines_evicted += released.len() as u64;
        released
    }

    /// Number of non-active (allocatable) lines in a bank.
    pub fn allocatable(&self, bank: usize) -> usize {
        self.banks[bank]
            .lines
            .iter()
            .filter(|l| l.state != LineState::Active)
            .count()
    }

    /// Per-bank line-state census: `(active, evictable, free)` counts.
    /// The three always sum to [`Osu::lines_per_bank`].
    pub fn bank_states(&self, bank: usize) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for line in &self.banks[bank].lines {
            match line.state {
                LineState::Active => counts.0 += 1,
                LineState::Evictable => counts.1 += 1,
                LineState::Free => counts.2 += 1,
            }
        }
        counts
    }

    /// Number of lines with a free (unallocated) state across the OSU.
    pub fn free_lines(&self) -> usize {
        self.banks
            .iter()
            .flat_map(|b| &b.lines)
            .filter(|l| l.state == LineState::Free)
            .count()
    }

    /// Number of active lines across the OSU (for tests/diagnostics).
    pub fn active_lines(&self) -> usize {
        self.banks
            .iter()
            .flat_map(|b| &b.lines)
            .filter(|l| l.state == LineState::Active)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut osu = Osu::new(4);
        let r = osu.write(0, Reg(3), LaneVec::splat(7));
        assert!(r.allocated && r.spilled.is_none() && !r.failed);
        assert_eq!(osu.read(0, Reg(3)), Some(LaneVec::splat(7)));
        assert_eq!(osu.active_lines(), 1);
    }

    #[test]
    fn fill_is_clean_write_is_dirty() {
        let mut osu = Osu::new(1);
        // Fill then displace: clean lines drop silently.
        osu.fill(0, Reg(0), LaneVec::splat(1));
        osu.release(0, Reg(0));
        let r = osu.write(0, Reg(8), LaneVec::splat(2)); // same bank (0+8)%8
        assert!(r.spilled.is_none(), "clean victim needs no spill");
        // Dirty line displaced must be returned.
        osu.release(0, Reg(8));
        let r = osu.write(8, Reg(0), LaneVec::splat(3)); // bank (8+0)%8 = 0
        assert_eq!(
            r.spilled,
            Some(EvictedLine {
                warp: 0,
                reg: Reg(8),
                value: LaneVec::splat(2)
            })
        );
    }

    #[test]
    fn allocation_fails_when_bank_full_of_active() {
        let mut osu = Osu::new(1);
        osu.write(0, Reg(0), LaneVec::zero());
        let r = osu.write(0, Reg(8), LaneVec::zero()); // same bank, both active
        assert!(r.failed);
    }

    #[test]
    fn promote_reactivates() {
        let mut osu = Osu::new(2);
        osu.write(0, Reg(0), LaneVec::splat(5));
        osu.release(0, Reg(0));
        assert_eq!(osu.allocatable(0), 2);
        assert!(osu.promote(0, Reg(0)));
        assert_eq!(osu.allocatable(0), 1);
        assert_eq!(osu.read(0, Reg(0)), Some(LaneVec::splat(5)));
        assert!(!osu.promote(3, Reg(9)));
    }

    #[test]
    fn erase_frees() {
        let mut osu = Osu::new(2);
        osu.write(0, Reg(0), LaneVec::zero());
        osu.erase(0, Reg(0));
        assert!(!osu.contains(0, Reg(0)));
        assert_eq!(osu.active_lines(), 0);
        assert_eq!(osu.allocatable(0), 2);
    }

    #[test]
    fn release_warp_releases_only_that_warp() {
        let mut osu = Osu::new(4);
        osu.write(0, Reg(0), LaneVec::zero());
        osu.write(0, Reg(1), LaneVec::zero());
        osu.write(1, Reg(0), LaneVec::zero());
        let released = osu.release_warp(0);
        assert_eq!(released.len(), 2);
        assert_eq!(osu.active_lines(), 1);
    }

    #[test]
    fn free_then_clean_then_dirty_order() {
        let mut osu = Osu::new(3);
        // Bank 0: one clean evictable, one dirty evictable, one free.
        osu.fill(0, Reg(0), LaneVec::splat(1));
        osu.release(0, Reg(0));
        osu.write(0, Reg(8), LaneVec::splat(2));
        osu.release(0, Reg(8));
        // First alloc takes the free line.
        let r1 = osu.write(0, Reg(16), LaneVec::splat(3));
        assert!(r1.spilled.is_none());
        // Second alloc drops the clean line.
        let r2 = osu.write(8, Reg(0), LaneVec::splat(4));
        assert!(r2.spilled.is_none());
        assert!(!osu.contains(0, Reg(0)), "clean line dropped");
        // Third alloc spills the dirty line.
        let r3 = osu.write(8, Reg(8), LaneVec::splat(5));
        assert_eq!(r3.spilled.as_ref().map(|e| e.reg), Some(Reg(8)));
    }

    #[test]
    fn eviction_counter_counts_each_transition_once() {
        let mut osu = Osu::new(2);
        assert_eq!(osu.lines_evicted(), 0);
        osu.write(0, Reg(0), LaneVec::splat(1));
        assert!(osu.release(0, Reg(0)), "drain transition");
        assert_eq!(osu.lines_evicted(), 1);
        assert!(!osu.release(0, Reg(0)), "re-release is a no-op");
        assert_eq!(osu.lines_evicted(), 1);
        osu.promote(0, Reg(0));
        osu.release(0, Reg(0));
        assert_eq!(osu.lines_evicted(), 2, "promote + re-release counts again");
        assert!(osu.erase(0, Reg(0)), "dead-value reclaim");
        assert_eq!(osu.lines_evicted(), 3);
        assert!(!osu.erase(0, Reg(0)), "erase of absent line is a no-op");
        assert_eq!(osu.lines_evicted(), 3);

        // Clean-victim drop counts once and is flagged to the caller.
        osu.fill(0, Reg(0), LaneVec::splat(2));
        osu.release(0, Reg(0)); // 4
        osu.fill(0, Reg(8), LaneVec::splat(3)); // same bank, takes the free line
        let r = osu.write(8, Reg(0), LaneVec::splat(4)); // displaces the clean line
        assert_eq!(r.dropped_clean, Some((0, Reg(0))));
        assert!(r.spilled.is_none());
        assert_eq!(osu.lines_evicted(), 5);

        // Dirty-victim spill counts once and returns the line.
        osu.release(8, Reg(0)); // 6
        let r = osu.write(16, Reg(0), LaneVec::splat(5));
        assert!(r.spilled.is_some() && r.dropped_clean.is_none());
        assert_eq!(osu.lines_evicted(), 7);
    }

    #[test]
    fn bank_states_census_sums_to_capacity() {
        let mut osu = Osu::new(3);
        osu.write(0, Reg(0), LaneVec::splat(1));
        osu.fill(0, Reg(8), LaneVec::splat(2));
        osu.release(0, Reg(8));
        let (active, evictable, free) = osu.bank_states(0);
        assert_eq!((active, evictable, free), (1, 1, 1));
        assert_eq!(osu.free_lines(), 3 * NUM_BANKS - 2);
    }

    #[test]
    fn rewrite_in_place_does_not_allocate() {
        let mut osu = Osu::new(2);
        osu.write(0, Reg(0), LaneVec::splat(1));
        let r = osu.write(0, Reg(0), LaneVec::splat(2));
        assert!(!r.allocated);
        assert_eq!(osu.read(0, Reg(0)), Some(LaneVec::splat(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Write(usize, u16),
        Fill(usize, u16),
        Release(usize, u16),
        Erase(usize, u16),
        Promote(usize, u16),
        ReleaseWarp(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        (0usize..4, 0u16..16, 0u8..6).prop_map(|(w, r, k)| match k {
            0 => Op::Write(w, r),
            1 => Op::Fill(w, r),
            2 => Op::Release(w, r),
            3 => Op::Erase(w, r),
            4 => Op::Promote(w, r),
            _ => Op::ReleaseWarp(w),
        })
    }

    proptest! {
        /// The OSU never exceeds capacity and tags always match lines.
        #[test]
        fn invariants_hold(ops in proptest::collection::vec(arb_op(), 1..200)) {
            let mut osu = Osu::new(2);
            for op in ops {
                match op {
                    Op::Write(w, r) => { osu.write(w, Reg(r), LaneVec::splat(r as u32)); }
                    Op::Fill(w, r) => { osu.fill(w, Reg(r), LaneVec::splat(r as u32)); }
                    Op::Release(w, r) => {
                        osu.release(w, Reg(r));
                    }
                    Op::Erase(w, r) => {
                        osu.erase(w, Reg(r));
                    }
                    Op::Promote(w, r) => { osu.promote(w, Reg(r)); }
                    Op::ReleaseWarp(w) => { osu.release_warp(w); }
                }
                prop_assert!(osu.active_lines() <= osu.capacity());
                for b in 0..NUM_BANKS {
                    prop_assert!(osu.allocatable(b) <= osu.lines_per_bank());
                }
            }
        }

        /// A value written and not displaced reads back exactly.
        #[test]
        fn written_values_read_back(w in 0usize..4, r in 0u16..8, v: u32) {
            let mut osu = Osu::new(4);
            osu.write(w, Reg(r), LaneVec::splat(v));
            prop_assert_eq!(osu.read(w, Reg(r)), Some(LaneVec::splat(v)));
        }
    }
}
