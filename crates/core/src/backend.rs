//! The RegLess operand backend: capacity managers, OSUs, and compressors
//! wired into the SM pipeline (paper §5, Figure 8).

use crate::cm::{CapacityManager, WarpPhase};
use crate::compressor::{Compressor, PatternKind, StoreOutcome};
use crate::config::RegLessConfig;
use crate::osu::{runtime_bank, EvictedLine, InstallResult, Osu};
use crate::regmem::{RegisterBacking, RegisterMemoryMap, REG_LINE_BYTES};
use regless_compiler::{CompiledKernel, LastUse, NUM_BANKS};
use regless_isa::{InsnRef, Instruction, LaneVec, Reg};
use regless_sim::{
    BackendCtx, Cycle, EvictionReason, GpuConfig, Level, OperandBackend, PreloadSource, SmStats,
    TraceEvent, Traffic, WarpState,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// A queued preload (one per region input register).
#[derive(Clone, Copy, Debug)]
struct QueuedPreload {
    warp: usize,
    reg: Reg,
    invalidate: bool,
}

/// One scheduler shard's RegLess hardware.
struct Shard {
    cm: CapacityManager,
    osu: Osu,
    compressor: Compressor,
    queues: [VecDeque<QueuedPreload>; NUM_BANKS],
    /// (completion cycle, warp) of in-flight preload fetches.
    inflight: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Cache-invalidation requests awaiting the L1 port.
    invalidations: VecDeque<(usize, Reg)>,
}

impl Shard {
    fn quiesced(&self) -> bool {
        self.inflight.is_empty()
            && self.invalidations.is_empty()
            && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Whether the shard must run `begin_cycle` on the very next cycle:
    /// per-bank preload queues and the one-per-cycle invalidation drain
    /// make progress every cycle they are non-empty.
    fn busy_every_cycle(&self) -> bool {
        !self.invalidations.is_empty() || self.queues.iter().any(|q| !q.is_empty())
    }
}

/// Telemetry series names for the recorder-gated per-bank occupancy
/// samples (the `Recorder` API wants `&'static str` names).
const BANK_OCCUPANCY_SERIES: [&str; NUM_BANKS] = [
    "osu.bank0.active",
    "osu.bank1.active",
    "osu.bank2.active",
    "osu.bank3.active",
    "osu.bank4.active",
    "osu.bank5.active",
    "osu.bank6.active",
    "osu.bank7.active",
];

/// The [`SmStats`] counter a compressor pattern hit increments.
fn pattern_counter(stats: &mut SmStats, kind: PatternKind) -> &mut u64 {
    match kind {
        PatternKind::Constant => &mut stats.comp_constant,
        PatternKind::Stride1 => &mut stats.comp_stride1,
        PatternKind::Stride4 => &mut stats.comp_stride4,
        PatternKind::HalfStride1 => &mut stats.comp_half_stride1,
        PatternKind::HalfStride4 => &mut stats.comp_half_stride4,
    }
}

/// Rotate the compiler's per-bank usage vector by the warp id: at run time
/// register `r` of warp `w` maps to bank `(w + r) % 8`, so the compile-time
/// vector (indexed by `r % 8`) shifts by `w % 8`.
fn rotated_usage(usage: &[u16; NUM_BANKS], warp: usize) -> [usize; NUM_BANKS] {
    let mut out = [0usize; NUM_BANKS];
    for (r_bank, &count) in usage.iter().enumerate() {
        out[(r_bank + warp) % NUM_BANKS] = count as usize;
    }
    out
}

/// The RegLess [`OperandBackend`]: replaces the register file with operand
/// staging units actively managed from compiler annotations.
pub struct RegLessBackend {
    compiled: Arc<CompiledKernel>,
    shards: Vec<Shard>,
    backing: RegisterBacking,
    regmap: RegisterMemoryMap,
    num_scheds: usize,
    /// Earliest cycle each warp's region metadata finishes decoding; the
    /// region cannot activate before this (metadata instructions consume
    /// fetch/decode bandwidth, not issue slots — §5.4).
    meta_ready_at: Vec<Cycle>,
    /// Warps whose Exit issued but whose drain has not completed.
    finishing: Vec<bool>,
    /// Cycle each warp's current region activated (for residency stats).
    activated_at: Vec<Cycle>,
    /// Outstanding preloads per warp (queued + in flight), indexed by warp.
    /// Warps are sharded disjointly, so one flat array serves every shard.
    preloads_pending: Vec<usize>,
    /// Whether any shard's CM admitted a warp this cycle. Admission is
    /// rate-limited to one warp per shard per cycle, so a success means the
    /// *next* cycle may admit another even with no issue or writeback in
    /// between — the fast path must not skip it.
    admitted_now: bool,
    /// Writebacks in flight per `(warp, register)` — a flat `warp ×
    /// num_regs` count array (the same register can have several writes
    /// outstanding), with a per-warp nonzero-entry count so drain setup
    /// can skip warps with nothing in flight.
    inflight_regs: InflightRegs,
}

/// Structure-of-arrays writeback-in-flight bookkeeping: counts laid out
/// `warp-major × num_regs`, replacing a per-warp `HashMap<Reg, u32>`.
struct InflightRegs {
    counts: Vec<u32>,
    /// Registers with a nonzero count, per warp.
    nonzero: Vec<u32>,
    num_regs: usize,
}

impl InflightRegs {
    fn new(warps: usize, num_regs: usize) -> Self {
        InflightRegs {
            counts: vec![0; warps * num_regs.max(1)],
            nonzero: vec![0; warps],
            num_regs: num_regs.max(1),
        }
    }

    fn incr(&mut self, w: usize, reg: Reg) {
        let c = &mut self.counts[w * self.num_regs + reg.index()];
        if *c == 0 {
            self.nonzero[w] += 1;
        }
        *c += 1;
    }

    /// Decrement; returns whether this was the register's last outstanding
    /// writeback (count reached zero). A register with no record is a
    /// no-op returning `false`, matching the old map's `get_mut` miss.
    fn decr(&mut self, w: usize, reg: Reg) -> bool {
        let c = &mut self.counts[w * self.num_regs + reg.index()];
        if *c == 0 {
            return false;
        }
        *c -= 1;
        if *c == 0 {
            self.nonzero[w] -= 1;
            true
        } else {
            false
        }
    }

    /// The warp's per-register counts (indexed by `Reg::index`).
    fn warp(&self, w: usize) -> &[u32] {
        &self.counts[w * self.num_regs..(w + 1) * self.num_regs]
    }
}

impl RegLessBackend {
    /// Build the backend for SM `sm`.
    ///
    /// # Panics
    ///
    /// Panics if the compiled kernel's region limits exceed the OSU shape
    /// (use [`RegLessConfig::region_config`] when compiling).
    pub fn new(
        sm: usize,
        gpu: &GpuConfig,
        config: &RegLessConfig,
        compiled: Arc<CompiledKernel>,
    ) -> Self {
        let lines_per_bank = config.lines_per_bank(gpu);
        assert!(
            compiled.config().max_regs_per_bank <= lines_per_bank,
            "kernel compiled for {} regs/bank but OSU banks hold {} lines; \
             compile with RegLessConfig::region_config",
            compiled.config().max_regs_per_bank,
            lines_per_bank
        );
        let num_scheds = gpu.schedulers_per_sm;
        let num_regs = compiled.kernel().num_regs() as usize;
        let shards = (0..num_scheds)
            .map(|s| {
                let warps: Vec<usize> = (0..gpu.warps_per_sm)
                    .filter(|w| w % num_scheds == s)
                    .collect();
                Shard {
                    cm: CapacityManager::with_order(
                        &warps,
                        gpu.warps_per_sm,
                        lines_per_bank,
                        config.activation_order,
                    ),
                    osu: Osu::new(lines_per_bank),
                    compressor: Compressor::with_patterns(
                        config.compressor_lines_per_shard,
                        gpu.warps_per_sm,
                        config.compressor_enabled,
                        config.compressor_patterns,
                    ),
                    queues: std::array::from_fn(|_| VecDeque::new()),
                    inflight: BinaryHeap::new(),
                    invalidations: VecDeque::new(),
                }
            })
            .collect();
        RegLessBackend {
            regmap: RegisterMemoryMap::for_sm(
                sm,
                gpu.warps_per_sm,
                compiled.kernel().num_regs() as usize,
            ),
            compiled,
            shards,
            backing: RegisterBacking::new(),
            num_scheds,
            meta_ready_at: vec![0; gpu.warps_per_sm],
            finishing: vec![false; gpu.warps_per_sm],
            activated_at: vec![0; gpu.warps_per_sm],
            preloads_pending: vec![0; gpu.warps_per_sm],
            admitted_now: false,
            inflight_regs: InflightRegs::new(gpu.warps_per_sm, num_regs),
        }
    }

    fn shard_of(&self, w: usize) -> usize {
        w % self.num_scheds
    }

    /// Charge one OSU eviction to its cause and trace it: every site that
    /// makes the OSU's internal `lines_evicted` counter tick must call
    /// this exactly once (the eviction-accounting conservation law).
    fn note_eviction(ctx: &mut BackendCtx<'_>, reason: EvictionReason, warp: usize, reg: Reg) {
        ctx.stats.eviction_stack.charge(reason);
        ctx.stats
            .trace_event(ctx.now, TraceEvent::OsuEvict { warp, reg, reason });
    }

    /// Begin draining warp `w`: free everything except lines whose
    /// writebacks are still in flight (paper §5.1). `inflight` is the
    /// warp's per-register outstanding-writeback counts
    /// ([`InflightRegs::warp`]).
    fn start_drain(shard: &mut Shard, inflight: &[u32], w: usize, ctx: &mut BackendCtx<'_>) {
        let mut pending = [0usize; NUM_BANKS];
        for (r, &count) in inflight.iter().enumerate() {
            if count > 0 {
                pending[runtime_bank(w, Reg(r as u16))] += 1;
            }
        }
        shard.cm.begin_drain(w, pending);
        let released = shard
            .osu
            .release_warp_except(w, |reg| inflight[reg.index()] > 0);
        for reg in released {
            Self::note_eviction(ctx, EvictionReason::RegionDrain, w, reg);
        }
    }

    /// Spill a displaced dirty line through the compressor (or to the L1
    /// uncompressed).
    fn spill(
        shard: &mut Shard,
        backing: &mut RegisterBacking,
        regmap: &RegisterMemoryMap,
        line: EvictedLine,
        ctx: &mut BackendCtx<'_>,
    ) {
        ctx.stats.compressor_matches += 1;
        ctx.stats.comp_bytes_in += REG_LINE_BYTES;
        match shard.compressor.store(line.warp, line.reg, &line.value) {
            StoreOutcome::Compressed { line_miss, kind } => {
                ctx.stats.compressor_compressed += 1;
                ctx.stats.comp_bytes_out += kind.payload_bytes() as u64;
                *pattern_counter(ctx.stats, kind) += 1;
                ctx.stats.trace_event(
                    ctx.now,
                    TraceEvent::CompressorStore {
                        warp: line.warp,
                        reg: line.reg,
                        compressed: true,
                    },
                );
                if line_miss {
                    let addr = regmap.compressed_line_addr(line.warp, line.reg);
                    ctx.mem
                        .access_line(ctx.sm, addr, true, Traffic::Register, ctx.now);
                    ctx.stats.reg_stores_l1 += 1;
                    ctx.stats.backing_series.record(ctx.now, 1);
                }
            }
            StoreOutcome::Incompressible => {
                ctx.stats.comp_incompressible += 1;
                ctx.stats.comp_bytes_out += REG_LINE_BYTES;
                ctx.stats.trace_event(
                    ctx.now,
                    TraceEvent::CompressorStore {
                        warp: line.warp,
                        reg: line.reg,
                        compressed: false,
                    },
                );
                backing.store(line.warp, line.reg, line.value);
                let addr = regmap.line_addr(line.warp, line.reg);
                ctx.mem
                    .access_line(ctx.sm, addr, true, Traffic::Register, ctx.now);
                ctx.stats.reg_stores_l1 += 1;
                ctx.stats.backing_series.record(ctx.now, 1);
            }
        }
    }

    /// Account for an OSU install's fallout: a clean victim dropped is a
    /// capacity preemption, a dirty victim displaced is a compressor
    /// spill, and a failed allocation counts against the reservation
    /// model.
    fn settle_install(
        shard: &mut Shard,
        backing: &mut RegisterBacking,
        regmap: &RegisterMemoryMap,
        result: InstallResult,
        ctx: &mut BackendCtx<'_>,
    ) {
        if let Some((warp, reg)) = result.dropped_clean {
            Self::note_eviction(ctx, EvictionReason::CapacityPreemption, warp, reg);
        }
        if result.failed {
            ctx.stats.reservation_overflows += 1;
        }
        if let Some(victim) = result.spilled {
            Self::note_eviction(
                ctx,
                EvictionReason::CompressorSpill,
                victim.warp,
                victim.reg,
            );
            Self::spill(shard, backing, regmap, victim, ctx);
        }
    }

    /// Process at most one preload per OSU bank (one tag probe per bank per
    /// cycle, §5.2.1).
    fn process_preloads(&mut self, shard_idx: usize, ctx: &mut BackendCtx<'_>) {
        let shard = &mut self.shards[shard_idx];
        for bank in 0..NUM_BANKS {
            let Some(p) = shard.queues[bank].pop_front() else {
                continue;
            };
            ctx.stats.osu_tag_probes += 1;
            let done;
            if shard.osu.promote(p.warp, p.reg) {
                ctx.stats.record_preload(PreloadSource::Osu);
                ctx.stats.trace_event(
                    ctx.now,
                    TraceEvent::Preload {
                        warp: p.warp,
                        reg: p.reg,
                        source: PreloadSource::Osu,
                    },
                );
                // A tag hit completes within the probe cycle: retire the
                // preload immediately so the warp can activate this cycle.
                done = ctx.now;
                if p.invalidate {
                    // The incoming value dies here: drop stale memory-side
                    // copies for free (the read carries the invalidation).
                    shard.compressor.invalidate(p.warp, p.reg);
                    self.backing.invalidate(p.warp, p.reg);
                    ctx.mem
                        .l1_drop_line(ctx.sm, self.regmap.line_addr(p.warp, p.reg));
                }
            } else if shard.compressor.is_compressed(p.warp, p.reg) {
                let hit = shard
                    .compressor
                    .load(p.warp, p.reg)
                    .expect("bit vector said so");
                let (source, when) = if hit.line_miss {
                    let addr = self.regmap.compressed_line_addr(p.warp, p.reg);
                    ctx.stats
                        .observe("l1.port_backlog", ctx.mem.l1_port_backlog(ctx.sm, ctx.now));
                    let a = ctx
                        .mem
                        .access_line(ctx.sm, addr, false, Traffic::Register, ctx.now);
                    ctx.stats.backing_series.record(ctx.now, 1);
                    let src = if a.serviced_by == Level::L1 {
                        PreloadSource::L1
                    } else {
                        PreloadSource::L2OrDram
                    };
                    match src {
                        PreloadSource::L1 => ctx.stats.preloads_l1 += 1,
                        _ => ctx.stats.preloads_l2_dram += 1,
                    }
                    ctx.stats.trace_event(
                        ctx.now,
                        TraceEvent::Preload {
                            warp: p.warp,
                            reg: p.reg,
                            source: src,
                        },
                    );
                    (None, a.done + 3)
                } else {
                    (Some(PreloadSource::Compressor), ctx.now + 3)
                };
                if let Some(s) = source {
                    ctx.stats.record_preload(s);
                    ctx.stats.trace_event(
                        ctx.now,
                        TraceEvent::Preload {
                            warp: p.warp,
                            reg: p.reg,
                            source: s,
                        },
                    );
                }
                let result = shard.osu.fill(p.warp, p.reg, hit.value);
                Self::settle_install(shard, &mut self.backing, &self.regmap, result, ctx);
                done = when;
                if p.invalidate {
                    shard.compressor.invalidate(p.warp, p.reg);
                }
            } else {
                let addr = self.regmap.line_addr(p.warp, p.reg);
                ctx.stats
                    .observe("l1.port_backlog", ctx.mem.l1_port_backlog(ctx.sm, ctx.now));
                let a = ctx
                    .mem
                    .access_line(ctx.sm, addr, false, Traffic::Register, ctx.now);
                ctx.stats.backing_series.record(ctx.now, 1);
                let src = if a.serviced_by == Level::L1 {
                    PreloadSource::L1
                } else {
                    PreloadSource::L2OrDram
                };
                ctx.stats.record_preload(src);
                ctx.stats.trace_event(
                    ctx.now,
                    TraceEvent::Preload {
                        warp: p.warp,
                        reg: p.reg,
                        source: src,
                    },
                );
                let value = self.backing.load(p.warp, p.reg);
                let result = shard.osu.fill(p.warp, p.reg, value);
                Self::settle_install(shard, &mut self.backing, &self.regmap, result, ctx);
                // The compressor bit-vector check adds one cycle to
                // non-compressed preloads (§5.3).
                done = a.done + 1;
                if p.invalidate {
                    self.backing.invalidate(p.warp, p.reg);
                    ctx.mem.l1_drop_line(ctx.sm, addr);
                }
            }
            ctx.stats
                .observe("preload.latency", done.saturating_sub(ctx.now));
            if done <= ctx.now {
                self.preloads_pending[p.warp] -= 1;
            } else {
                shard.inflight.push(Reverse((done, p.warp)));
            }
        }
    }
}

impl OperandBackend for RegLessBackend {
    fn begin_cycle_with_warps(&mut self, warps: &[WarpState], ctx: &mut BackendCtx<'_>) {
        self.admitted_now = false;
        // Sample the OSU/CM occupancy census once per stats window: live
        // (active) lines, CM-reserved lines, free lines, and the admission
        // queue depth. Always on — the series feed `regless report`'s
        // occupancy timeline whether or not a recorder is attached.
        if ctx.now.is_multiple_of(regless_sim::WINDOW_CYCLES) {
            let active: usize = self.shards.iter().map(|s| s.osu.active_lines()).sum();
            let reserved: usize = self.shards.iter().map(|s| s.cm.committed_total()).sum();
            let free: usize = self.shards.iter().map(|s| s.osu.free_lines()).sum();
            let queued: usize = self.shards.iter().map(|s| s.cm.queue_depth()).sum();
            ctx.stats.osu_occupancy.record(ctx.now, active as u64);
            ctx.stats
                .osu_reserved_series
                .record(ctx.now, reserved as u64);
            ctx.stats.osu_free_series.record(ctx.now, free as u64);
            ctx.stats.cm_queue_series.record(ctx.now, queued as u64);
            ctx.stats.sample("osu.occupancy", ctx.now, active as f64);
            ctx.stats.sample("osu.reserved", ctx.now, reserved as f64);
            ctx.stats.sample("osu.free", ctx.now, free as f64);
            ctx.stats.sample("cm.queue_depth", ctx.now, queued as f64);
            // Per-bank census only when a recorder is listening (it is an
            // 8-way fan-out of the same walk).
            if ctx.stats.telemetry_enabled() {
                for (bank, name) in BANK_OCCUPANCY_SERIES.iter().copied().enumerate() {
                    let live: usize = self.shards.iter().map(|s| s.osu.bank_states(bank).0).sum();
                    ctx.stats.sample(name, ctx.now, live as f64);
                }
            }
        }
        for s in 0..self.shards.len() {
            // 1. Complete in-flight preload fetches.
            {
                let shard = &mut self.shards[s];
                while let Some(&Reverse((done, w))) = shard.inflight.peek() {
                    if done > ctx.now {
                        break;
                    }
                    shard.inflight.pop();
                    self.preloads_pending[w] -= 1;
                }
            }

            // 2. Send one queued cache invalidation to the L1.
            {
                let shard = &mut self.shards[s];
                if let Some((w, reg)) = shard.invalidations.pop_front() {
                    let addr = self.regmap.line_addr(w, reg);
                    ctx.mem.invalidate_l1_line(ctx.sm, addr, ctx.now);
                    shard.compressor.invalidate(w, reg);
                    self.backing.invalidate(w, reg);
                    ctx.stats.reg_invalidate_l1 += 1;
                    ctx.stats.backing_series.record(ctx.now, 1);
                }
            }

            // 3. Process per-bank preload queues.
            self.process_preloads(s, ctx);

            let shard = &mut self.shards[s];

            // 4. Region transitions driven by warp PCs.
            for (w, warp) in warps.iter().enumerate() {
                if w % self.num_scheds != s {
                    continue;
                }
                match shard.cm.phase(w) {
                    WarpPhase::Active(region) => {
                        let left_region = match warp.pc() {
                            None => true,
                            Some(pc) => self.compiled.region_at(pc) != region,
                        };
                        if left_region {
                            ctx.stats
                                .trace_event(ctx.now, TraceEvent::RegionDrain { warp: w });
                            Self::start_drain(shard, self.inflight_regs.warp(w), w, ctx);
                        }
                    }
                    WarpPhase::Preloading(_)
                        if self.preloads_pending[w] == 0 && ctx.now >= self.meta_ready_at[w] =>
                    {
                        let region = shard.cm.activate(w);
                        self.activated_at[w] = ctx.now;
                        ctx.stats.regions_activated += 1;
                        ctx.stats.trace_event(
                            ctx.now,
                            TraceEvent::RegionActivate {
                                warp: w,
                                region: region.0,
                            },
                        );
                    }
                    _ => {}
                }
                if let WarpPhase::Draining(_) = shard.cm.phase(w) {
                    if shard.cm.try_finish_drain(w, self.finishing[w]) {
                        let resident = ctx.now.saturating_sub(self.activated_at[w]);
                        ctx.stats.region_active_cycles += resident;
                        ctx.stats.observe("region.active_cycles", resident);
                        ctx.stats
                            .trace_event(ctx.now, TraceEvent::RegionRelease { warp: w });
                    }
                }
            }

            // 5. Admit the top stack warp if its next region fits.
            let compiled = &self.compiled;
            let finishing = &self.finishing;
            let started = shard.cm.try_start_preload(|w| {
                if finishing[w] || warps[w].finished() || warps[w].at_barrier {
                    return None;
                }
                let pc = warps[w].pc()?;
                let region = compiled.region_at(pc);
                let usage = rotated_usage(compiled.region(region).bank_usage(), w);
                Some((region, usage))
            });
            if let Some((w, region)) = started {
                self.admitted_now = true;
                ctx.stats.trace_event(
                    ctx.now,
                    TraceEvent::RegionPreload {
                        warp: w,
                        region: region.0,
                    },
                );
                let r = compiled.region(region);
                let preloads = r.preloads();
                self.preloads_pending[w] = preloads.len();
                if !preloads.is_empty() {
                    for p in preloads {
                        let bank = runtime_bank(w, p.reg);
                        shard.queues[bank].push_back(QueuedPreload {
                            warp: w,
                            reg: p.reg,
                            invalidate: p.invalidate,
                        });
                    }
                }
                for &reg in compiled.annotations().cache_invalidates(region) {
                    shard.invalidations.push_back((w, reg));
                }
                let meta = compiled.metadata().for_region(region) as u64;
                ctx.stats.meta_insns += meta;
                self.meta_ready_at[w] = ctx.now + meta;
            }
        }
    }

    fn warp_eligible(&mut self, w: usize, pc: InsnRef) -> bool {
        let shard = &self.shards[self.shard_of(w)];
        match shard.cm.phase(w) {
            WarpPhase::Active(region) => self.compiled.region_at(pc) == region,
            _ => false,
        }
    }

    fn issue_stall(&self, w: usize, _pc: InsnRef) -> Option<regless_sim::StallReason> {
        use regless_sim::StallReason;
        let shard = &self.shards[self.shard_of(w)];
        match shard.cm.phase(w) {
            // Inputs being staged into the OSU.
            WarpPhase::Preloading(_) => Some(StallReason::CmPreloadWait),
            // Stacked, waiting its turn. If the CM's last admission scan
            // denied a candidate for capacity, the slot is lost to OSU
            // space; otherwise the warp is simply behind in the preload
            // pipeline.
            WarpPhase::Inactive => Some(if shard.cm.admission_capacity_denied() {
                StallReason::OsuCapacityWait
            } else {
                StallReason::CmPreloadWait
            }),
            // Between regions: old region still draining, or the PC moved
            // past the active region's boundary.
            WarpPhase::Draining(_) | WarpPhase::Active(_) => Some(StallReason::Drain),
            WarpPhase::Finished => None,
        }
    }

    fn on_issue(
        &mut self,
        w: usize,
        at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        let s = self.shard_of(w);
        let shard = &mut self.shards[s];
        ctx.stats.osu_reads += insn.srcs().len() as u64;
        // Each OSU bank ports one access per cycle: same-bank source reads
        // serialize (§5.2).
        let mut banks_seen = [false; NUM_BANKS];
        let mut extra = 0;
        for &srcr in insn.srcs() {
            let b = runtime_bank(w, srcr);
            if banks_seen[b] {
                extra += 1;
                ctx.stats.osu_bank_conflicts += 1;
            }
            banks_seen[b] = true;
        }
        // Apply last-use annotations after the reads.
        if let Some(notes) = self.compiled.annotations().notes(at) {
            for &(reg, kind) in &notes.last_uses {
                match kind {
                    LastUse::Erase => {
                        if shard.osu.erase(w, reg) {
                            Self::note_eviction(ctx, EvictionReason::DeadValueReclaim, w, reg);
                        }
                    }
                    LastUse::Evict => {
                        if shard.osu.release(w, reg) {
                            Self::note_eviction(ctx, EvictionReason::RegionDrain, w, reg);
                        }
                    }
                }
            }
        }
        shard.cm.note_issue(w, insn.dst().is_some());
        if let Some(d) = insn.dst() {
            self.inflight_regs.incr(w, d);
        }
        // Issuing the region's last instruction starts the drain right away
        // — the CM knows the boundary from the region metadata.
        if let WarpPhase::Active(region) = shard.cm.phase(w) {
            if at.idx + 1 == self.compiled.region(region).end() {
                ctx.stats
                    .trace_event(ctx.now, TraceEvent::RegionDrain { warp: w });
                Self::start_drain(shard, self.inflight_regs.warp(w), w, ctx);
            }
        }
        extra
    }

    fn on_writeback(
        &mut self,
        w: usize,
        at: InsnRef,
        reg: Reg,
        value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        let s = self.shard_of(w);
        let shard = &mut self.shards[s];
        ctx.stats.osu_writes += 1;
        let result = shard.osu.write(w, reg, value);
        let overflowed = result.failed;
        Self::settle_install(shard, &mut self.backing, &self.regmap, result, ctx);
        if overflowed {
            // Reservation model fell short (should be rare): write through
            // to memory so the value is never lost. This spill is not an
            // OSU eviction — no line was displaced — so it carries no
            // eviction cause.
            Self::spill(
                shard,
                &mut self.backing,
                &self.regmap,
                EvictedLine {
                    warp: w,
                    reg,
                    value,
                },
                ctx,
            );
        }
        let fully_landed = self.inflight_regs.decr(w, reg);
        if let Some(notes) = self.compiled.annotations().notes(at) {
            if notes.erase_on_write {
                if shard.osu.erase(w, reg) {
                    Self::note_eviction(ctx, EvictionReason::DeadValueReclaim, w, reg);
                }
            } else if notes.evict_on_write && shard.osu.release(w, reg) {
                Self::note_eviction(ctx, EvictionReason::RegionDrain, w, reg);
            }
        }
        shard.cm.note_writeback(w);
        // While draining, a landed register's line is released right away
        // and its slice of the reservation returned (paper §5.1).
        if fully_landed {
            if let WarpPhase::Draining(_) = shard.cm.phase(w) {
                if shard.osu.release(w, reg) {
                    Self::note_eviction(ctx, EvictionReason::RegionDrain, w, reg);
                }
                shard.cm.note_drain_release(w, runtime_bank(w, reg));
            }
        }
    }

    fn check_staged_operands(
        &self,
        w: usize,
        operands: &[(Reg, LaneVec)],
        stats: &mut regless_sim::SmStats,
    ) {
        let shard = &self.shards[self.shard_of(w)];
        for &(reg, expected) in operands {
            if let Some(staged) = shard.osu.read(w, reg) {
                if staged != expected {
                    stats.staging_mismatches += 1;
                    if std::env::var_os("REGLESS_DEBUG_STAGING").is_some() {
                        eprintln!("WRONG-VALUE w{w} {reg} staged {staged:?} expected {expected:?}");
                    }
                }
            } else {
                // A read with no staged line: the capacity-manager guarantee
                // ("instructions have their registers available in the OSU
                // as they execute") was violated.
                stats.staging_mismatches += 1;
                if std::env::var_os("REGLESS_DEBUG_STAGING").is_some() {
                    eprintln!("MISSING w{w} {reg} phase {:?}", shard.cm.phase(w));
                }
            }
        }
    }

    fn on_warp_finish(&mut self, w: usize, ctx: &mut BackendCtx<'_>) {
        self.finishing[w] = true;
        let s = self.shard_of(w);
        let shard = &mut self.shards[s];
        // `Exit` is its region's last instruction, so on_issue usually
        // started the drain already; only start one if it did not.
        if let WarpPhase::Active(_) = shard.cm.phase(w) {
            ctx.stats
                .trace_event(ctx.now, TraceEvent::RegionDrain { warp: w });
            Self::start_drain(shard, self.inflight_regs.warp(w), w, ctx);
        }
    }

    fn quiesced(&self) -> bool {
        self.shards.iter().all(Shard::quiesced)
    }

    fn next_wakeup(&self, now: Cycle) -> Option<Cycle> {
        // Queued preloads and cache invalidations drain one per bank (or
        // one per shard) per cycle, so any backlog demands the next cycle;
        // likewise an admission this cycle means the one-per-cycle
        // admission scan may admit the next stacked warp next cycle.
        if self.admitted_now || self.shards.iter().any(Shard::busy_every_cycle) {
            return Some(now + 1);
        }
        let mut wake: Option<Cycle> = None;
        let mut note = |c: Cycle| {
            let c = c.max(now + 1);
            wake = Some(wake.map_or(c, |w| w.min(c)));
        };
        for shard in &self.shards {
            if let Some(&Reverse((done, _))) = shard.inflight.peek() {
                note(done);
            }
        }
        // A preloading warp with nothing queued or in flight is waiting
        // only on its region metadata decode before it can activate.
        for (w, &ready) in self.meta_ready_at.iter().enumerate() {
            if self.preloads_pending[w] == 0
                && matches!(
                    self.shards[self.shard_of(w)].cm.phase(w),
                    WarpPhase::Preloading(_)
                )
            {
                note(ready);
            }
        }
        // Draining and inactive warps need no wakeup of their own: drain
        // progress rides the SM's writeback events, and admission inputs
        // only change on issues or writebacks — both real ticks.
        wake
    }

    fn finish(&mut self, stats: &mut SmStats) {
        // Publish the OSU's mechanical eviction count; the final cycle can
        // evict lines after the last `begin_cycle`, so this happens once
        // at run end rather than per cycle.
        stats.osu_lines_evicted = self.shards.iter().map(|s| s.osu.lines_evicted()).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_rotation_shifts_by_warp() {
        let usage = [3, 1, 0, 0, 0, 0, 0, 2];
        let r0 = rotated_usage(&usage, 0);
        assert_eq!(r0, [3, 1, 0, 0, 0, 0, 0, 2]);
        let r1 = rotated_usage(&usage, 1);
        assert_eq!(r1, [2, 3, 1, 0, 0, 0, 0, 0]);
        let r9 = rotated_usage(&usage, 9);
        assert_eq!(r9, r1, "rotation is mod 8");
        // Totals are invariant.
        assert_eq!(r1.iter().sum::<usize>(), usage.iter().sum::<u16>() as usize);
    }
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use regless_compiler::compile;
    use regless_isa::KernelBuilder;
    use regless_sim::{GpuConfig, MemSystem, SmStats};

    fn setup() -> (GpuConfig, Arc<CompiledKernel>) {
        let gpu = GpuConfig::test_small();
        let cfg = RegLessConfig::paper_default();
        let mut b = KernelBuilder::new("unit");
        let next = b.new_block();
        let x = b.movi(1);
        let y = b.movi(2);
        let z = b.iadd(x, y);
        b.jmp(next);
        b.select(next);
        let w = b.imul(z, z);
        b.st_global(w, z);
        b.exit();
        let kernel = b.finish().unwrap();
        let compiled = Arc::new(compile(&kernel, &cfg.region_config(&gpu)).unwrap());
        (gpu, compiled)
    }

    #[test]
    fn first_region_needs_no_preloads_and_activates() {
        let (gpu, compiled) = setup();
        let cfg = RegLessConfig::paper_default();
        let mut backend = RegLessBackend::new(0, &gpu, &cfg, Arc::clone(&compiled));
        let mut mem = MemSystem::new(&gpu);
        let mut stats = SmStats::default();
        let warps: Vec<regless_sim::WarpState> = (0..gpu.warps_per_sm)
            .map(|_| regless_sim::WarpState::new(compiled.kernel()))
            .collect();
        let pc = warps[0].pc().unwrap();
        assert!(!backend.warp_eligible(0, pc), "inactive warp cannot issue");
        // Cycle 0: admission; the entry region has no inputs, so within a
        // couple of cycles the warp activates.
        for now in 0..4 {
            let mut ctx = BackendCtx {
                sm: 0,
                now,
                mem: &mut mem,
                stats: &mut stats,
            };
            backend.begin_cycle_with_warps(&warps, &mut ctx);
        }
        assert!(backend.warp_eligible(0, pc), "warp should be active");
        assert!(stats.regions_activated >= 1);
    }

    #[test]
    fn writeback_allocates_an_osu_line_with_the_value() {
        let (gpu, compiled) = setup();
        let cfg = RegLessConfig::paper_default();
        let mut backend = RegLessBackend::new(0, &gpu, &cfg, Arc::clone(&compiled));
        let mut mem = MemSystem::new(&gpu);
        let mut stats = SmStats::default();
        let at = regless_isa::InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        // Activate warp 0 first so the write lands in an active region.
        let warps: Vec<regless_sim::WarpState> = (0..gpu.warps_per_sm)
            .map(|_| regless_sim::WarpState::new(compiled.kernel()))
            .collect();
        for now in 0..4 {
            let mut ctx = BackendCtx {
                sm: 0,
                now,
                mem: &mut mem,
                stats: &mut stats,
            };
            backend.begin_cycle_with_warps(&warps, &mut ctx);
        }
        let mut ctx = BackendCtx {
            sm: 0,
            now: 5,
            mem: &mut mem,
            stats: &mut stats,
        };
        backend.on_writeback(0, at, Reg(0), LaneVec::splat(77), &mut ctx);
        assert_eq!(stats.osu_writes, 1);
        // The staged-operand oracle sees the value.
        let ops = [(Reg(0), LaneVec::splat(77))];
        backend.check_staged_operands(0, &ops, &mut stats);
        assert_eq!(stats.staging_mismatches, 0);
        // A mismatching expectation is caught.
        let bad = [(Reg(0), LaneVec::splat(78))];
        backend.check_staged_operands(0, &bad, &mut stats);
        assert_eq!(stats.staging_mismatches, 1);
    }

    #[test]
    fn quiesced_when_no_work_pending() {
        let (gpu, compiled) = setup();
        let cfg = RegLessConfig::paper_default();
        let backend = RegLessBackend::new(0, &gpu, &cfg, compiled);
        assert!(backend.quiesced());
    }
}
