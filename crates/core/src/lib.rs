//! RegLess hardware model: just-in-time operand staging replacing the GPU
//! register file (paper §5).
//!
//! Each scheduler shard gets a **capacity manager** ([`CapacityManager`])
//! that admits warps to execution only once their next region's operands
//! are staged, an 8-bank **operand staging unit** ([`Osu`]) a quarter the
//! size of the register file it replaces, and a pattern **compressor**
//! ([`Compressor`]) that shrinks registers spilled through the L1.
//!
//! [`RegLessSim`] wires these into the `regless-sim` pipeline:
//!
//! ```
//! use regless_core::{RegLessConfig, RegLessSim};
//! use regless_compiler::compile;
//! use regless_isa::KernelBuilder;
//! use regless_sim::GpuConfig;
//!
//! let mut b = KernelBuilder::new("triple");
//! let i = b.thread_idx();
//! let t = b.movi(3);
//! let v = b.imul(i, t);
//! b.st_global(v, i);
//! b.exit();
//! let kernel = b.finish()?;
//!
//! let gpu = GpuConfig::test_small();
//! let rl = RegLessConfig::paper_default();
//! let compiled = compile(&kernel, &rl.region_config(&gpu))?;
//! let report = RegLessSim::new(gpu, rl, compiled).run()?;
//! assert_eq!(report.total().insns, 8 * 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cm;
mod compressor;
mod config;
mod osu;
mod regmem;

pub use backend::RegLessBackend;
pub use cm::{ActivationOrder, CapacityManager, WarpPhase};
pub use compressor::{
    Compressed, CompressedHit, Compressor, PatternKind, PatternSet, StoreOutcome,
    NUM_PATTERN_KINDS, REGS_PER_COMPRESSED_LINE,
};
pub use config::RegLessConfig;
pub use osu::{runtime_bank, EvictedLine, InstallResult, Osu};
pub use regmem::{RegisterBacking, RegisterMemoryMap, REG_LINE_BYTES};

use regless_compiler::CompiledKernel;
use regless_sim::{GpuConfig, Machine, RunReport, SimError};
use std::sync::Arc;

/// A complete RegLess GPU simulation: the `regless-sim` pipeline with the
/// RegLess backend on every SM.
pub struct RegLessSim {
    machine: Machine<RegLessBackend>,
}

impl RegLessSim {
    /// Build a simulation of `compiled` on `gpu` with RegLess structures
    /// sized by `config`.
    ///
    /// The kernel must have been compiled with region limits that fit the
    /// OSU ([`RegLessConfig::region_config`]).
    ///
    /// # Panics
    ///
    /// Panics if the kernel's region limits exceed the OSU bank size.
    pub fn new(gpu: GpuConfig, config: RegLessConfig, compiled: CompiledKernel) -> Self {
        let compiled = Arc::new(compiled);
        let machine = Machine::new(gpu, Arc::clone(&compiled), |sm| {
            RegLessBackend::new(sm, &gpu, &config, Arc::clone(&compiled))
        });
        RegLessSim { machine }
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the cycle limit is exceeded.
    pub fn run(self) -> Result<RunReport, SimError> {
        self.machine.run()
    }

    /// Attach a telemetry recorder to every SM (see
    /// [`Machine::attach_telemetry`]); the merged telemetry comes back in
    /// [`RunReport::telemetry`].
    pub fn attach_telemetry(&mut self, events_per_sm: usize) {
        self.machine.attach_telemetry(events_per_sm);
    }

    /// Attach a cooperative cancellation token (see
    /// [`Machine::set_cancel_token`]): the run returns
    /// [`regless_sim::SimError::Cancelled`] once it trips.
    pub fn set_cancel_token(&mut self, token: regless_sim::CancelToken) {
        self.machine.set_cancel_token(token);
    }

    /// Force the stepped (cycle-by-cycle) run loop instead of the
    /// event-driven fast path (see [`Machine::set_stepped`]). Both paths
    /// produce byte-identical reports; the stepped loop is the
    /// differential-testing reference.
    pub fn set_stepped(&mut self, stepped: bool) {
        self.machine.set_stepped(stepped);
    }

    /// Attach a shared host-side self profiler (see
    /// [`Machine::attach_self_profiler`]): the run loop records where its
    /// own wall time goes, and the caller keeps the handle to render the
    /// breakdown. Simulated results are byte-identical either way.
    pub fn attach_self_profiler(&mut self, prof: std::sync::Arc<regless_telemetry::SelfProfiler>) {
        self.machine.attach_self_profiler(prof);
    }
}

/// Compile a kernel with limits matched to `config` and run it under
/// RegLess in one call.
///
/// # Errors
///
/// Returns a boxed error for compile failures or simulation timeouts.
pub fn run_regless(
    gpu: GpuConfig,
    config: RegLessConfig,
    kernel: &regless_isa::Kernel,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let compiled = regless_compiler::compile(kernel, &config.region_config(&gpu))?;
    Ok(RegLessSim::new(gpu, config, compiled).run()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::{KernelBuilder, Opcode};
    use regless_sim::{run_baseline, GpuConfig};

    fn gpu() -> GpuConfig {
        GpuConfig::test_small()
    }

    fn run(kernel: &regless_isa::Kernel) -> RunReport {
        run_regless(gpu(), RegLessConfig::paper_default(), kernel).expect("runs")
    }

    #[test]
    fn straight_line_kernel_completes() {
        let mut b = KernelBuilder::new("s");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        let y = b.imul(x, i);
        b.st_global(y, i);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        let t = report.total();
        assert_eq!(t.insns, 8 * 5);
        assert!(
            t.regions_activated >= 8,
            "each warp activates at least once"
        );
        assert!(t.meta_insns > 0, "metadata bubbles issued");
        assert!(t.osu_reads > 0 && t.osu_writes > 0);
        assert_eq!(t.rf_reads, 0, "no register file remains");
    }

    #[test]
    fn cross_region_value_flows_through_staging() {
        // A load's value is used in a later region: the value must flow
        // OSU -> (eviction?) -> preload correctly.
        let mut b = KernelBuilder::new("flow");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let w = b.iadd(v, i); // separate region (load/use split)
        b.st_global(w, i);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        let t = report.total();
        assert_eq!(t.insns, 8 * 5);
        assert!(t.regions_activated >= 16, "two regions per warp");
        assert!(t.preloads_total() > 0, "second region preloads inputs");
    }

    #[test]
    fn loop_kernel_with_cross_region_values() {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(32);
        let acc = b.movi(0);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(acc, Opcode::IAdd, vec![acc, i0]);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.st_global(acc, acc);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        assert_eq!(report.total().insns, 8 * (4 + 32 * 5 + 2));
    }

    #[test]
    fn barrier_kernel_does_not_deadlock() {
        let mut b = KernelBuilder::new("bar");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        b.bar();
        let y = b.imul(x, x);
        b.st_global(y, i);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        assert_eq!(report.total().insns, 8 * 6);
    }

    #[test]
    fn divergent_kernel_completes() {
        let mut b = KernelBuilder::new("div");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let lane = b.lane_idx();
        let half = b.movi(16);
        let c = b.setlt(lane, half);
        b.bra(c, t, e);
        b.select(t);
        let a1 = b.iadd(lane, lane);
        b.st_global(a1, lane);
        b.jmp(j);
        b.select(e);
        let a2 = b.imul(lane, lane);
        b.st_global(a2, lane);
        b.jmp(j);
        b.select(j);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        assert_eq!(report.total().insns, 8 * 11);
    }

    /// RegLess should be performance-competitive with the baseline on a
    /// modest kernel (the paper reports no average loss).
    #[test]
    fn runtime_close_to_baseline() {
        let mut b = KernelBuilder::new("perf");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(64);
        let tid = b.thread_idx();
        b.jmp(body);
        b.select(body);
        let v = b.ld_global(tid);
        let x = b.iadd(v, tid);
        b.st_global(x, tid);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let k = b.finish().unwrap();

        let rl = RegLessConfig::paper_default();
        let compiled_rl = regless_compiler::compile(&k, &rl.region_config(&gpu())).unwrap();
        let regless = RegLessSim::new(gpu(), rl, compiled_rl).run().unwrap();
        let compiled_base = std::sync::Arc::new(
            regless_compiler::compile(&k, &regless_compiler::RegionConfig::default()).unwrap(),
        );
        let baseline = run_baseline(gpu(), compiled_base).unwrap();
        let ratio = regless.cycles as f64 / baseline.cycles as f64;
        assert!(
            ratio < 1.6,
            "RegLess {} vs baseline {} cycles (ratio {ratio:.2})",
            regless.cycles,
            baseline.cycles
        );
    }

    /// Most preloads should hit in the OSU or compressor, not memory
    /// (Figure 17: 0.9% from L1 on average).
    #[test]
    fn preloads_mostly_hit_staging() {
        let mut b = KernelBuilder::new("hits");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(64);
        let acc = b.movi(0);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(acc, Opcode::IAdd, vec![acc, i0]);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.st_global(acc, acc);
        b.exit();
        let k = b.finish().unwrap();
        let report = run(&k);
        let t = report.total();
        let total = t.preloads_total() as f64;
        assert!(total > 0.0);
        let staged = (t.preloads_osu + t.preloads_compressor) as f64;
        assert!(staged / total > 0.8, "staged {staged} of {total} preloads");
    }
}
