//! Register→memory mapping and the register backing store (paper §5.2.3).
//!
//! Register memory is allocated like any other global buffer (the paper
//! hooks `cudaMalloc`), laid out so that every warp's copy of R0 is
//! sequential, then every copy of R1, and so on — warps touch the same
//! register numbers at about the same time, so this layout minimizes cache
//! set conflicts. Compressed registers map to an adjacent second space.

use regless_isa::{LaneVec, Reg};
use std::collections::HashMap;

/// Byte size of one register's warp-wide value.
pub const REG_LINE_BYTES: u64 = 128;

/// Address map for one SM's spilled registers.
#[derive(Clone, Copy, Debug)]
pub struct RegisterMemoryMap {
    base: u64,
    compressed_base: u64,
    warps_per_sm: usize,
}

impl RegisterMemoryMap {
    /// Create a map. `base` is the start of the register buffer (placed
    /// far above the data heap so register and data lines never alias);
    /// the compressed space sits immediately after the uncompressed one.
    pub fn new(base: u64, warps_per_sm: usize, num_regs: usize) -> Self {
        let uncompressed_bytes = (warps_per_sm * num_regs) as u64 * REG_LINE_BYTES;
        RegisterMemoryMap {
            base,
            compressed_base: base + uncompressed_bytes,
            warps_per_sm,
        }
    }

    /// Default placement used by the simulator.
    pub fn for_sm(sm: usize, warps_per_sm: usize, num_regs: usize) -> Self {
        // Each SM gets its own 1 GiB-aligned window above 1 TiB.
        Self::new((1 << 40) + (sm as u64) * (1 << 30), warps_per_sm, num_regs)
    }

    /// Line address of one (warp, register) value.
    pub fn line_addr(&self, warp: usize, reg: Reg) -> u64 {
        debug_assert!(warp < self.warps_per_sm);
        self.base + (reg.index() * self.warps_per_sm + warp) as u64 * REG_LINE_BYTES
    }

    /// Line address of the compressed line holding a (warp, register).
    pub fn compressed_line_addr(&self, warp: usize, reg: Reg) -> u64 {
        let idx =
            (reg.index() * self.warps_per_sm + warp) / crate::compressor::REGS_PER_COMPRESSED_LINE;
        self.compressed_base + idx as u64 * REG_LINE_BYTES
    }
}

/// Value contents of spilled (uncompressed) registers. Presence/timing in
/// the caches is modelled by the memory hierarchy; this map is the
/// "DRAM contents".
#[derive(Clone, Debug, Default)]
pub struct RegisterBacking {
    values: HashMap<(usize, Reg), LaneVec>,
}

impl RegisterBacking {
    /// Empty backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an evicted value.
    pub fn store(&mut self, warp: usize, reg: Reg, value: LaneVec) {
        self.values.insert((warp, reg), value);
    }

    /// Read a value back; registers never written spill as zero (reads of
    /// never-defined registers).
    pub fn load(&self, warp: usize, reg: Reg) -> LaneVec {
        self.values
            .get(&(warp, reg))
            .copied()
            .unwrap_or_else(LaneVec::zero)
    }

    /// Drop a dead value.
    pub fn invalidate(&mut self, warp: usize, reg: Reg) {
        self.values.remove(&(warp, reg));
    }

    /// Number of resident values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are resident.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_groups_by_register_number() {
        let m = RegisterMemoryMap::new(0, 4, 8);
        // All warps' R0 are consecutive lines.
        assert_eq!(m.line_addr(0, Reg(0)), 0);
        assert_eq!(m.line_addr(1, Reg(0)), 128);
        assert_eq!(m.line_addr(3, Reg(0)), 3 * 128);
        // R1 starts after all R0s.
        assert_eq!(m.line_addr(0, Reg(1)), 4 * 128);
    }

    #[test]
    fn compressed_space_is_disjoint() {
        let m = RegisterMemoryMap::new(0, 4, 8);
        let max_uncompressed = m.line_addr(3, Reg(7));
        assert!(m.compressed_line_addr(0, Reg(0)) > max_uncompressed);
    }

    #[test]
    fn per_sm_windows_disjoint() {
        let a = RegisterMemoryMap::for_sm(0, 64, 64);
        let b = RegisterMemoryMap::for_sm(1, 64, 64);
        assert!(b.line_addr(0, Reg(0)) > a.line_addr(63, Reg(63)));
    }

    #[test]
    fn backing_store_roundtrip() {
        let mut b = RegisterBacking::new();
        assert!(b.is_empty());
        b.store(2, Reg(5), LaneVec::splat(9));
        assert_eq!(b.load(2, Reg(5)), LaneVec::splat(9));
        assert_eq!(b.load(2, Reg(6)), LaneVec::zero());
        b.invalidate(2, Reg(5));
        assert_eq!(b.load(2, Reg(5)), LaneVec::zero());
        assert_eq!(b.len(), 0);
    }
}
