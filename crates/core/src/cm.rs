//! The capacity manager (paper §5.1, Figure 9).
//!
//! One CM fronts each warp scheduler. It tracks a per-warp state machine
//! (inactive → preloading → active → draining → inactive), keeps inactive
//! warps on a LIFO **warp stack** (the top warp ran most recently, so its
//! outputs are most likely still staged), and maintains per-bank budget
//! counters so that the regions it admits never need more OSU lines than
//! exist.

use regless_compiler::{RegionId, NUM_BANKS};
use std::collections::VecDeque;

/// Order in which drained warps re-enter the activation queue.
///
/// The paper's design is LIFO (a warp stack): the most recently drained
/// warp activates next, so its outputs are most likely still staged. FIFO
/// is provided as the `ablation_warp_order` comparison point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ActivationOrder {
    /// Warp stack (paper §5.1).
    #[default]
    Lifo,
    /// Round-robin queue.
    Fifo,
}

regless_json::impl_json_enum!(ActivationOrder { Lifo, Fifo });

/// Per-warp scheduling phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WarpPhase {
    /// On the warp stack with no OSU allocation.
    Inactive,
    /// Registers being assembled for `region`.
    Preloading(RegionId),
    /// Eligible to issue instructions from `region`.
    Active(RegionId),
    /// Issued its last instruction of `region`; waiting for outstanding
    /// writebacks before releasing the allocation.
    Draining(RegionId),
    /// Exited the kernel.
    Finished,
}

/// The capacity manager for one scheduler shard.
///
/// ```
/// use regless_core::{CapacityManager, WarpPhase};
/// use regless_compiler::RegionId;
///
/// let mut cm = CapacityManager::new(&[0, 1], 2, 16);
/// // Admit the top warp for a region needing one line per bank.
/// let (w, region) = cm
///     .try_start_preload(|_| Some((RegionId(0), [1; 8])))
///     .expect("fits");
/// assert_eq!(cm.phase(w), WarpPhase::Preloading(region));
/// cm.activate(w);
/// cm.begin_drain(w, [0; 8]);
/// assert!(cm.try_finish_drain(w, false));
/// assert_eq!(cm.phase(w), WarpPhase::Inactive);
/// ```
#[derive(Clone, Debug)]
pub struct CapacityManager {
    phases: Vec<WarpPhase>,
    /// Inactive warps, back = top of the stack. A deque so both ends are
    /// O(1): LIFO re-activation pushes the drained warp on top
    /// (`push_back`) and FIFO sends it to the bottom (`push_front`).
    stack: VecDeque<usize>,
    /// Budgeted lines per bank across preloading + active + draining warps.
    committed: [usize; NUM_BANKS],
    /// Reservation of each warp's current region, for release.
    reservation: Vec<[usize; NUM_BANKS]>,
    /// Writebacks still in flight per warp.
    outstanding: Vec<usize>,
    lines_per_bank: usize,
    order: ActivationOrder,
    /// Whether the most recent [`CapacityManager::try_start_preload`] call
    /// found a candidate warp but denied it for lack of bank capacity
    /// (as opposed to finding no candidate at all). Feeds the issue-slot
    /// attribution: a capacity denial charges `OsuCapacityWait`.
    denied_capacity: bool,
}

impl CapacityManager {
    /// A CM supervising the given SM-local warp ids. The lowest id starts
    /// on top of the stack.
    pub fn new(warps: &[usize], num_warps_total: usize, lines_per_bank: usize) -> Self {
        Self::with_order(
            warps,
            num_warps_total,
            lines_per_bank,
            ActivationOrder::Lifo,
        )
    }

    /// As [`CapacityManager::new`], selecting the re-activation order.
    pub fn with_order(
        warps: &[usize],
        num_warps_total: usize,
        lines_per_bank: usize,
        order: ActivationOrder,
    ) -> Self {
        let mut ids: Vec<usize> = warps.to_vec();
        ids.sort_unstable();
        ids.reverse(); // lowest id on top
        let stack: VecDeque<usize> = ids.into();
        CapacityManager {
            phases: vec![WarpPhase::Inactive; num_warps_total],
            stack,
            committed: [0; NUM_BANKS],
            reservation: vec![[0; NUM_BANKS]; num_warps_total],
            outstanding: vec![0; num_warps_total],
            lines_per_bank,
            order,
            denied_capacity: false,
        }
    }

    /// The warp's current phase.
    pub fn phase(&self, w: usize) -> WarpPhase {
        self.phases[w]
    }

    /// Whether the most recent [`CapacityManager::try_start_preload`]
    /// denied an otherwise-runnable warp because its region did not fit
    /// the remaining bank budget. Distinguishes "stalled on capacity"
    /// from "no warp wanted to preload" for CPI-stack attribution.
    pub fn admission_capacity_denied(&self) -> bool {
        self.denied_capacity
    }

    /// Whether `usage` fits the remaining budget.
    pub fn fits(&self, usage: &[usize; NUM_BANKS]) -> bool {
        (0..NUM_BANKS).all(|b| self.committed[b] + usage[b] <= self.lines_per_bank)
    }

    /// Try to start preloading for the topmost stack warp that is not
    /// blocked. Returns the chosen warp if one was admitted.
    ///
    /// `next` maps a warp to its next region's id and (rotated) bank usage;
    /// `None` means the warp cannot run now (at a barrier). Warps for which
    /// `next` reports `None` are skipped but stay stacked; a warp that
    /// fits is popped and committed.
    ///
    /// # Panics
    ///
    /// Panics if a region can never fit (its usage exceeds the bank
    /// capacity outright) — a compiler/configuration mismatch.
    pub fn try_start_preload(
        &mut self,
        mut next: impl FnMut(usize) -> Option<(RegionId, [usize; NUM_BANKS])>,
    ) -> Option<(usize, RegionId)> {
        self.denied_capacity = false;
        // Scan from the top for the first admissible warp.
        for pos in (0..self.stack.len()).rev() {
            let w = self.stack[pos];
            let Some((region, usage)) = next(w) else {
                continue;
            };
            if !self.fits(&usage) {
                assert!(
                    usage.iter().all(|&u| u <= self.lines_per_bank),
                    "region {region:?} needs {usage:?} lines but banks hold only {}",
                    self.lines_per_bank
                );
                // Capacity will free as active warps drain; do not bypass
                // (preserves the stack's locality order).
                self.denied_capacity = true;
                return None;
            }
            self.stack.remove(pos);
            for (c, &u) in self.committed.iter_mut().zip(usage.iter()) {
                *c += u;
            }
            self.reservation[w] = usage;
            self.phases[w] = WarpPhase::Preloading(region);
            return Some((w, region));
        }
        None
    }

    /// All preloads for `w` completed: the warp becomes active.
    ///
    /// # Panics
    ///
    /// Panics if the warp is not preloading.
    pub fn activate(&mut self, w: usize) -> RegionId {
        match self.phases[w] {
            WarpPhase::Preloading(r) => {
                self.phases[w] = WarpPhase::Active(r);
                r
            }
            other => panic!("activate on warp {w} in phase {other:?}"),
        }
    }

    /// A real instruction issued from `w`; `has_dst` tracks outstanding
    /// writebacks for draining.
    pub fn note_issue(&mut self, w: usize, has_dst: bool) {
        if has_dst {
            self.outstanding[w] += 1;
        }
    }

    /// A writeback for `w` landed.
    pub fn note_writeback(&mut self, w: usize) {
        self.outstanding[w] = self.outstanding[w].saturating_sub(1);
    }

    /// Writebacks still in flight for `w`.
    pub fn outstanding(&self, w: usize) -> usize {
        self.outstanding[w]
    }

    /// The warp left its region (PC moved on) — begin draining.
    ///
    /// Most of the region's reservation is released immediately; only
    /// `still_pending` lines per bank (registers with writebacks in
    /// flight) stay budgeted until they land (paper §5.1: "any other
    /// registers that were allocated to that region can be freed for other
    /// warps, but the pending register must stay allocated").
    ///
    /// # Panics
    ///
    /// Panics if the warp is not active, or if `still_pending` exceeds the
    /// region's reservation in some bank.
    pub fn begin_drain(&mut self, w: usize, still_pending: [usize; NUM_BANKS]) {
        match self.phases[w] {
            WarpPhase::Active(r) => self.phases[w] = WarpPhase::Draining(r),
            other => panic!("begin_drain on warp {w} in phase {other:?}"),
        }
        for (b, &pending) in still_pending.iter().enumerate() {
            // Pending lines can exceed the per-bank reservation only if the
            // reservation model was violated; clamp rather than underflow.
            let keep = pending.min(self.reservation[w][b]);
            self.committed[b] -= self.reservation[w][b] - keep;
            self.reservation[w][b] = keep;
        }
    }

    /// A pending writeback landed while `w` was draining: its line is now
    /// released, shrinking the held reservation.
    pub fn note_drain_release(&mut self, w: usize, bank: usize) {
        if self.reservation[w][bank] > 0 {
            self.reservation[w][bank] -= 1;
            self.committed[bank] -= 1;
        }
    }

    /// If `w` is draining with no outstanding writebacks, release its
    /// reservation. `finished` tells the CM whether the warp exited (it is
    /// then not restacked). Returns whether the drain completed now.
    pub fn try_finish_drain(&mut self, w: usize, finished: bool) -> bool {
        let WarpPhase::Draining(_) = self.phases[w] else {
            return false;
        };
        if self.outstanding[w] > 0 {
            return false;
        }
        for b in 0..NUM_BANKS {
            self.committed[b] -= self.reservation[w][b];
        }
        self.reservation[w] = [0; NUM_BANKS];
        if finished {
            self.phases[w] = WarpPhase::Finished;
        } else {
            self.phases[w] = WarpPhase::Inactive;
            match self.order {
                // Most recently run → top: its outputs are still staged.
                ActivationOrder::Lifo => self.stack.push_back(w),
                // Round-robin: go to the back of the line.
                ActivationOrder::Fifo => self.stack.push_front(w),
            }
        }
        true
    }

    /// Lines committed in one bank (diagnostics).
    pub fn committed(&self, bank: usize) -> usize {
        self.committed[bank]
    }

    /// Lines of `bank` currently reserved by warp `w` (diagnostics): the
    /// live remainder of the region reservation made at admission, after
    /// any partial drain releases.
    pub fn reserved(&self, w: usize, bank: usize) -> usize {
        self.reservation[w][bank]
    }

    /// Snapshot of the warps currently stacked, bottom first (top last).
    pub fn stack(&self) -> Vec<usize> {
        self.stack.iter().copied().collect()
    }

    /// Warps queued for admission (the depth the occupancy sampler
    /// records; cheaper than cloning [`CapacityManager::stack`]).
    pub fn queue_depth(&self) -> usize {
        self.stack.len()
    }

    /// Total lines committed across all banks (the "reserved" series of
    /// the occupancy timeline).
    pub fn committed_total(&self) -> usize {
        self.committed.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(n: usize) -> [usize; NUM_BANKS] {
        [n; NUM_BANKS]
    }

    fn cm() -> CapacityManager {
        CapacityManager::new(&[0, 2, 4], 6, 8)
    }

    #[test]
    fn lowest_warp_starts_on_top() {
        let c = cm();
        assert_eq!(c.stack(), &[4, 2, 0]);
    }

    #[test]
    fn admission_and_budget() {
        let mut c = cm();
        let got = c.try_start_preload(|w| Some((RegionId(w as u32), usage(5))));
        assert_eq!(got, Some((0, RegionId(0))));
        assert_eq!(c.phase(0), WarpPhase::Preloading(RegionId(0)));
        assert_eq!(c.committed(0), 5);
        // Next warp needs 5 more but only 3 remain: denied, stack intact.
        let got = c.try_start_preload(|w| Some((RegionId(w as u32), usage(5))));
        assert_eq!(got, None);
        assert_eq!(c.stack(), &[4, 2]);
    }

    #[test]
    fn blocked_top_is_skipped() {
        let mut c = cm();
        // Warp 0 (top) is at a barrier: skip to warp 2.
        let got = c.try_start_preload(|w| {
            if w == 0 {
                None
            } else {
                Some((RegionId(9), usage(1)))
            }
        });
        assert_eq!(got, Some((2, RegionId(9))));
        assert!(c.stack().contains(&0), "blocked warp stays stacked");
    }

    #[test]
    fn full_lifecycle_releases_budget() {
        let mut c = cm();
        let (w, _) = c
            .try_start_preload(|_| Some((RegionId(1), usage(4))))
            .unwrap();
        c.activate(w);
        assert_eq!(c.phase(w), WarpPhase::Active(RegionId(1)));
        c.note_issue(w, true);
        c.note_issue(w, false);
        // One register (in bank 0) still has a writeback in flight: the
        // rest of the reservation is released at drain start.
        let mut pending = [0; NUM_BANKS];
        pending[0] = 1;
        c.begin_drain(w, pending);
        assert_eq!(
            c.committed(0),
            1,
            "partial release keeps only pending lines"
        );
        assert_eq!(c.committed(1), 0);
        assert!(!c.try_finish_drain(w, false), "writeback still pending");
        c.note_writeback(w);
        assert!(c.try_finish_drain(w, false));
        assert_eq!(c.phase(w), WarpPhase::Inactive);
        assert_eq!(c.committed(0), 0);
        // The drained warp is back on top.
        assert_eq!(*c.stack().last().unwrap(), w);
    }

    #[test]
    fn finished_warp_not_restacked() {
        let mut c = cm();
        let (w, _) = c
            .try_start_preload(|_| Some((RegionId(1), usage(1))))
            .unwrap();
        c.activate(w);
        c.begin_drain(w, [0; NUM_BANKS]);
        assert!(c.try_finish_drain(w, true));
        assert_eq!(c.phase(w), WarpPhase::Finished);
        assert!(!c.stack().contains(&w));
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_region_panics() {
        let mut c = cm();
        let _ = c.try_start_preload(|_| Some((RegionId(0), usage(99))));
    }

    #[test]
    fn fifo_restacks_at_the_bottom() {
        let mut c = CapacityManager::with_order(&[0, 2, 4], 6, 8, ActivationOrder::Fifo);
        let (w, _) = c
            .try_start_preload(|_| Some((RegionId(0), usage(1))))
            .unwrap();
        c.activate(w);
        c.begin_drain(w, [0; NUM_BANKS]);
        assert!(c.try_finish_drain(w, false));
        assert_eq!(c.stack(), &[0, 4, 2], "drained warp goes to the bottom");
    }

    #[test]
    fn lifo_order_preserves_recency() {
        let mut c = cm();
        let (w0, _) = c
            .try_start_preload(|_| Some((RegionId(0), usage(1))))
            .unwrap();
        c.activate(w0);
        c.begin_drain(w0, [0; NUM_BANKS]);
        c.try_finish_drain(w0, false);
        // w0 drained last → top of stack again.
        let (again, _) = c
            .try_start_preload(|_| Some((RegionId(1), usage(1))))
            .unwrap();
        assert_eq!(again, w0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const WARPS: usize = 4;
    const LINES_PER_BANK: usize = 8;

    /// First warp in a phase matching `pred`, scanning from a rotating
    /// start so the sequence exercises every warp.
    fn pick(cm: &CapacityManager, start: usize, pred: impl Fn(WarpPhase) -> bool) -> Option<usize> {
        (0..WARPS)
            .map(|i| (start + i) % WARPS)
            .find(|&w| pred(cm.phase(w)))
    }

    /// After every operation, the bank budget counters must equal the sum
    /// of the live per-warp reservations — the accounting identity that
    /// `begin_drain`'s clamped partial release and `note_drain_release`'s
    /// underflow guard exist to preserve — and the warp stack must hold
    /// exactly the inactive warps.
    fn check(cm: &CapacityManager) {
        for b in 0..NUM_BANKS {
            let live: usize = (0..WARPS).map(|w| cm.reserved(w, b)).sum();
            assert_eq!(
                cm.committed(b),
                live,
                "bank {b}: committed != live reservations"
            );
            assert!(cm.committed(b) <= LINES_PER_BANK, "bank {b} over budget");
        }
        let mut stacked = cm.stack();
        stacked.sort_unstable();
        let inactive: Vec<usize> = (0..WARPS)
            .filter(|&w| cm.phase(w) == WarpPhase::Inactive)
            .collect();
        assert_eq!(
            stacked, inactive,
            "stack must hold exactly the inactive warps"
        );
    }

    proptest! {
        #[test]
        fn committed_always_sums_live_reservations(
            fifo in any::<bool>(),
            ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..250),
        ) {
            let order = if fifo { ActivationOrder::Fifo } else { ActivationOrder::Lifo };
            let warps: Vec<usize> = (0..WARPS).collect();
            let mut cm = CapacityManager::with_order(&warps, WARPS, LINES_PER_BANK, order);
            for (op, p) in ops {
                let p = p as usize;
                match op % 7 {
                    0 => {
                        // Admission with a per-bank usage pattern that
                        // varies by bank (including zero-usage banks).
                        let mut usage = [0usize; NUM_BANKS];
                        for (b, u) in usage.iter_mut().enumerate() {
                            *u = (p + b) % 4;
                        }
                        let _ = cm.try_start_preload(|w| {
                            if w % 3 == p % 3 { None } else { Some((RegionId(w as u32), usage)) }
                        });
                    }
                    1 => {
                        if let Some(w) = pick(&cm, p, |ph| matches!(ph, WarpPhase::Preloading(_))) {
                            cm.activate(w);
                        }
                    }
                    2 => {
                        if let Some(w) = pick(&cm, p, |ph| matches!(ph, WarpPhase::Active(_))) {
                            cm.note_issue(w, p.is_multiple_of(2));
                        }
                    }
                    3 => {
                        if let Some(w) = pick(&cm, p, |ph| {
                            matches!(ph, WarpPhase::Active(_) | WarpPhase::Draining(_))
                        }) {
                            cm.note_writeback(w);
                        }
                    }
                    4 => {
                        if let Some(w) = pick(&cm, p, |ph| matches!(ph, WarpPhase::Active(_))) {
                            // Pending counts may exceed the reservation in
                            // some banks — begin_drain must clamp, not
                            // underflow.
                            let mut pending = [0usize; NUM_BANKS];
                            for (b, q) in pending.iter_mut().enumerate() {
                                *q = (p + b) % 3;
                            }
                            cm.begin_drain(w, pending);
                        }
                    }
                    5 => {
                        if let Some(w) = pick(&cm, p, |ph| matches!(ph, WarpPhase::Draining(_))) {
                            // Also poke banks with no reservation left:
                            // the release must be a no-op, not underflow.
                            cm.note_drain_release(w, p % NUM_BANKS);
                        }
                    }
                    _ => {
                        if let Some(w) = pick(&cm, p, |ph| matches!(ph, WarpPhase::Draining(_))) {
                            let _ = cm.try_finish_drain(w, p.is_multiple_of(5));
                        }
                    }
                }
                check(&cm);
            }
        }
    }
}
