//! Register-value compression (paper §5.3).
//!
//! Registers evicted from the OSU are matched against a small set of value
//! patterns — deliberately simpler than general register-file compression:
//! broadcast constants, stride-1 and stride-4 sequences, and half-warp
//! variants of the strides. A compressed register needs 4 bytes (8 for the
//! half-warp forms) plus 3 state bits, so 15 compressed registers fit in
//! one 128-byte cache line. The compressor keeps a small internal cache of
//! compressed lines; lines that fall out of it travel through the L1.

use regless_isa::{LaneVec, Reg, WARP_WIDTH};

/// Which value patterns the compressor matches — the pattern-set ablation
/// of DESIGN.md §4. The paper's design is [`PatternSet::Full`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PatternSet {
    /// Only broadcast constants.
    ConstantOnly,
    /// Constants plus full-warp stride-1/stride-4.
    FullWarpStrides,
    /// The paper's set: constants, strides, and half-warp strides.
    #[default]
    Full,
}

regless_json::impl_json_enum!(PatternSet {
    ConstantOnly,
    FullWarpStrides,
    Full
});

/// A compressed register representation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Compressed {
    /// Every lane holds `value`.
    Constant(u32),
    /// Lane `i` holds `base + i`.
    Stride1(u32),
    /// Lane `i` holds `base + 4 * i`.
    Stride4(u32),
    /// Each 16-lane half is its own stride-1 sequence.
    HalfStride1(u32, u32),
    /// Each 16-lane half is its own stride-4 sequence.
    HalfStride4(u32, u32),
}

impl Compressed {
    /// Try to compress a register value with the paper's full pattern set.
    pub fn try_compress(v: &LaneVec) -> Option<Compressed> {
        Self::try_compress_with(v, PatternSet::Full)
    }

    /// Try to compress a register value with a restricted pattern set.
    pub fn try_compress_with(v: &LaneVec, patterns: PatternSet) -> Option<Compressed> {
        if v.is_uniform() {
            return Some(Compressed::Constant(v.lane(0)));
        }
        if patterns == PatternSet::ConstantOnly {
            return None;
        }
        let stride = |base: u32, step: u32, lo: usize, hi: usize| {
            (lo..hi).all(|i| v.lane(i) == base.wrapping_add(step.wrapping_mul((i - lo) as u32)))
        };
        if stride(v.lane(0), 1, 0, WARP_WIDTH) {
            return Some(Compressed::Stride1(v.lane(0)));
        }
        if stride(v.lane(0), 4, 0, WARP_WIDTH) {
            return Some(Compressed::Stride4(v.lane(0)));
        }
        if patterns == PatternSet::FullWarpStrides {
            return None;
        }
        let half = WARP_WIDTH / 2;
        if stride(v.lane(0), 1, 0, half) && stride(v.lane(half), 1, half, WARP_WIDTH) {
            return Some(Compressed::HalfStride1(v.lane(0), v.lane(half)));
        }
        if stride(v.lane(0), 4, 0, half) && stride(v.lane(half), 4, half, WARP_WIDTH) {
            return Some(Compressed::HalfStride4(v.lane(0), v.lane(half)));
        }
        None
    }

    /// Reconstruct the full register value.
    pub fn decompress(&self) -> LaneVec {
        let half = WARP_WIDTH / 2;
        match *self {
            Compressed::Constant(v) => LaneVec::splat(v),
            Compressed::Stride1(b) => LaneVec::stride(b, 1),
            Compressed::Stride4(b) => LaneVec::stride(b, 4),
            Compressed::HalfStride1(a, b) => half_stride(a, b, 1, half),
            Compressed::HalfStride4(a, b) => half_stride(a, b, 4, half),
        }
    }

    /// Stored payload size in bytes (excluding the 3 state bits).
    pub fn bytes(&self) -> usize {
        match self {
            Compressed::Constant(_) | Compressed::Stride1(_) | Compressed::Stride4(_) => 4,
            Compressed::HalfStride1(..) | Compressed::HalfStride4(..) => 8,
        }
    }
}

fn half_stride(a: u32, b: u32, step: u32, half: usize) -> LaneVec {
    let mut v = LaneVec::zero();
    for i in 0..half {
        v.set_lane(i, a.wrapping_add(step.wrapping_mul(i as u32)));
    }
    for i in half..WARP_WIDTH {
        v.set_lane(i, b.wrapping_add(step.wrapping_mul((i - half) as u32)));
    }
    v
}

/// Compressed registers per 128-byte line (paper: 15, leaving room for the
/// per-register state bits).
pub const REGS_PER_COMPRESSED_LINE: usize = 15;

/// The pattern a compressed value matched, without its payload: the closed
/// vocabulary the effectiveness counters are keyed by.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PatternKind {
    /// Every lane equal.
    Constant,
    /// Full-warp stride-1.
    Stride1,
    /// Full-warp stride-4.
    Stride4,
    /// Per-half stride-1.
    HalfStride1,
    /// Per-half stride-4.
    HalfStride4,
}

/// Number of [`PatternKind`] variants.
pub const NUM_PATTERN_KINDS: usize = 5;

impl PatternKind {
    /// All kinds, in display (and counter) order.
    pub const ALL: [PatternKind; NUM_PATTERN_KINDS] = [
        PatternKind::Constant,
        PatternKind::Stride1,
        PatternKind::Stride4,
        PatternKind::HalfStride1,
        PatternKind::HalfStride4,
    ];

    /// Dense index in [`PatternKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            PatternKind::Constant => 0,
            PatternKind::Stride1 => 1,
            PatternKind::Stride4 => 2,
            PatternKind::HalfStride1 => 3,
            PatternKind::HalfStride4 => 4,
        }
    }

    /// Stable snake_case name for counters and report rows.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::Constant => "constant",
            PatternKind::Stride1 => "stride1",
            PatternKind::Stride4 => "stride4",
            PatternKind::HalfStride1 => "half_stride1",
            PatternKind::HalfStride4 => "half_stride4",
        }
    }

    /// Payload bytes of a value stored under this pattern.
    pub fn payload_bytes(self) -> usize {
        match self {
            PatternKind::Constant | PatternKind::Stride1 | PatternKind::Stride4 => 4,
            PatternKind::HalfStride1 | PatternKind::HalfStride4 => 8,
        }
    }
}

impl Compressed {
    /// The pattern this value matched.
    pub fn kind(&self) -> PatternKind {
        match self {
            Compressed::Constant(_) => PatternKind::Constant,
            Compressed::Stride1(_) => PatternKind::Stride1,
            Compressed::Stride4(_) => PatternKind::Stride4,
            Compressed::HalfStride1(..) => PatternKind::HalfStride1,
            Compressed::HalfStride4(..) => PatternKind::HalfStride4,
        }
    }
}

/// What happened when a register was offered to the compressor on eviction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOutcome {
    /// The value matched a pattern and was absorbed; `line_miss` says
    /// whether the compressed line had to be fetched through the L1.
    Compressed {
        /// The internal line cache missed (one L1 access).
        line_miss: bool,
        /// Which pattern matched (for the effectiveness counters).
        kind: PatternKind,
    },
    /// The value matched no pattern; it must go to the L1 uncompressed.
    Incompressible,
}

/// Result of asking the compressor for a register during preload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompressedHit {
    /// The reconstructed value.
    pub value: LaneVec,
    /// Whether the compressed line had to come through the L1.
    pub line_miss: bool,
}

/// One shard's compressor: the compressed-register bit vector, the value
/// table, and a small LRU cache of compressed lines.
///
/// ```
/// use regless_core::{Compressor, StoreOutcome};
/// use regless_isa::{LaneVec, Reg};
///
/// let mut comp = Compressor::new(12, 64, true);
/// let tid = LaneVec::stride(32, 1); // a thread-index pattern
/// assert!(matches!(
///     comp.store(0, Reg(2), &tid),
///     StoreOutcome::Compressed { .. }
/// ));
/// let hit = comp.load(0, Reg(2)).expect("resident");
/// assert_eq!(hit.value, tid);
/// ```
#[derive(Clone, Debug)]
pub struct Compressor {
    /// Register → compressed value. Presence here is the paper's
    /// "compressed" bit vector.
    table: std::collections::HashMap<(usize, Reg), Compressed>,
    /// Internal cache of compressed line ids (LRU).
    cache: Vec<(u64, u64)>,
    capacity: usize,
    warps_per_sm: usize,
    tick: u64,
    enabled: bool,
    patterns: PatternSet,
}

impl Compressor {
    /// A compressor with an internal cache of `cache_lines` compressed
    /// lines. A disabled compressor (the Figure 16 ablation) reports every
    /// value incompressible.
    pub fn new(cache_lines: usize, warps_per_sm: usize, enabled: bool) -> Self {
        Self::with_patterns(cache_lines, warps_per_sm, enabled, PatternSet::Full)
    }

    /// As [`Compressor::new`], restricted to a pattern subset (ablation).
    pub fn with_patterns(
        cache_lines: usize,
        warps_per_sm: usize,
        enabled: bool,
        patterns: PatternSet,
    ) -> Self {
        Compressor {
            table: std::collections::HashMap::new(),
            cache: Vec::new(),
            capacity: cache_lines.max(1),
            warps_per_sm,
            tick: 0,
            enabled,
            patterns,
        }
    }

    /// The compressed line a register belongs to, following the register→
    /// memory layout (all of R0, then all of R1, …).
    fn line_of(&self, warp: usize, reg: Reg) -> u64 {
        ((reg.index() * self.warps_per_sm + warp) / REGS_PER_COMPRESSED_LINE) as u64
    }

    /// Touch a line in the internal cache; returns whether it missed.
    fn touch_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        if let Some(entry) = self.cache.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.tick;
            return false;
        }
        if self.cache.len() >= self.capacity {
            let (idx, _) = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("cache non-empty");
            self.cache.swap_remove(idx);
        }
        self.cache.push((line, self.tick));
        true
    }

    /// Whether the register is currently stored compressed (the bit-vector
    /// check that precedes any line fetch).
    pub fn is_compressed(&self, warp: usize, reg: Reg) -> bool {
        self.table.contains_key(&(warp, reg))
    }

    /// Offer an evicted register value.
    pub fn store(&mut self, warp: usize, reg: Reg, value: &LaneVec) -> StoreOutcome {
        if !self.enabled {
            return StoreOutcome::Incompressible;
        }
        match Compressed::try_compress_with(value, self.patterns) {
            Some(c) => {
                let line = self.line_of(warp, reg);
                let line_miss = self.touch_line(line);
                self.table.insert((warp, reg), c);
                StoreOutcome::Compressed {
                    line_miss,
                    kind: c.kind(),
                }
            }
            None => {
                // A stale compressed copy must not shadow the new value.
                self.table.remove(&(warp, reg));
                StoreOutcome::Incompressible
            }
        }
    }

    /// Fetch a compressed register during preload, if present.
    pub fn load(&mut self, warp: usize, reg: Reg) -> Option<CompressedHit> {
        let c = *self.table.get(&(warp, reg))?;
        let line = self.line_of(warp, reg);
        let line_miss = self.touch_line(line);
        Some(CompressedHit {
            value: c.decompress(),
            line_miss,
        })
    }

    /// Drop a register (invalidating read or cache-invalidate annotation).
    pub fn invalidate(&mut self, warp: usize, reg: Reg) {
        self.table.remove(&(warp, reg));
    }

    /// Number of registers currently held compressed.
    pub fn resident(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_compress() {
        assert_eq!(
            Compressed::try_compress(&LaneVec::splat(7)),
            Some(Compressed::Constant(7))
        );
        assert_eq!(
            Compressed::try_compress(&LaneVec::stride(100, 1)),
            Some(Compressed::Stride1(100))
        );
        assert_eq!(
            Compressed::try_compress(&LaneVec::stride(64, 4)),
            Some(Compressed::Stride4(64))
        );
    }

    #[test]
    fn half_warp_patterns() {
        let mut v = LaneVec::zero();
        for i in 0..16 {
            v.set_lane(i, 1000 + i as u32);
        }
        for i in 16..32 {
            v.set_lane(i, 5000 + (i - 16) as u32);
        }
        assert_eq!(
            Compressed::try_compress(&v),
            Some(Compressed::HalfStride1(1000, 5000))
        );
    }

    #[test]
    fn random_values_incompressible() {
        let mut v = LaneVec::zero();
        for i in 0..32 {
            v.set_lane(i, (i as u32).wrapping_mul(0x9e37_79b9));
        }
        assert_eq!(Compressed::try_compress(&v), None);
    }

    #[test]
    fn roundtrip() {
        for v in [
            LaneVec::splat(3),
            LaneVec::stride(7, 1),
            LaneVec::stride(0, 4),
        ] {
            let c = Compressed::try_compress(&v).unwrap();
            assert_eq!(c.decompress(), v);
        }
    }

    #[test]
    fn store_and_load() {
        let mut c = Compressor::new(4, 8, true);
        let v = LaneVec::stride(0, 1);
        assert!(matches!(
            c.store(0, Reg(0), &v),
            StoreOutcome::Compressed { .. }
        ));
        assert!(c.is_compressed(0, Reg(0)));
        let hit = c.load(0, Reg(0)).unwrap();
        assert_eq!(hit.value, v);
        c.invalidate(0, Reg(0));
        assert!(!c.is_compressed(0, Reg(0)));
        assert!(c.load(0, Reg(0)).is_none());
    }

    #[test]
    fn incompressible_clears_stale_entry() {
        let mut c = Compressor::new(4, 8, true);
        c.store(0, Reg(0), &LaneVec::splat(1));
        let mut random = LaneVec::zero();
        for i in 0..32 {
            random.set_lane(i, (i as u32).wrapping_mul(2654435761));
        }
        assert_eq!(c.store(0, Reg(0), &random), StoreOutcome::Incompressible);
        assert!(!c.is_compressed(0, Reg(0)));
    }

    #[test]
    fn restricted_pattern_sets() {
        let stride = LaneVec::stride(5, 1);
        let constant = LaneVec::splat(5);
        assert_eq!(
            Compressed::try_compress_with(&stride, PatternSet::ConstantOnly),
            None
        );
        assert!(Compressed::try_compress_with(&constant, PatternSet::ConstantOnly).is_some());
        let mut half = LaneVec::zero();
        for i in 0..16 {
            half.set_lane(i, 10 + i as u32);
        }
        for i in 16..32 {
            half.set_lane(i, 900 + (i - 16) as u32);
        }
        assert_eq!(
            Compressed::try_compress_with(&half, PatternSet::FullWarpStrides),
            None
        );
        assert!(Compressed::try_compress_with(&half, PatternSet::Full).is_some());
    }

    #[test]
    fn disabled_compressor_rejects_everything() {
        let mut c = Compressor::new(4, 8, false);
        assert_eq!(
            c.store(0, Reg(0), &LaneVec::splat(1)),
            StoreOutcome::Incompressible
        );
    }

    #[test]
    fn line_cache_lru() {
        let mut c = Compressor::new(2, 1, true);
        // Registers far apart map to distinct compressed lines.
        let far = |i: u16| Reg(i * REGS_PER_COMPRESSED_LINE as u16);
        assert!(matches!(
            c.store(0, far(0), &LaneVec::splat(0)),
            StoreOutcome::Compressed {
                line_miss: true,
                ..
            }
        ));
        assert!(matches!(
            c.store(0, far(1), &LaneVec::splat(0)),
            StoreOutcome::Compressed {
                line_miss: true,
                ..
            }
        ));
        // Line 0 still cached.
        assert!(matches!(
            c.store(0, far(0), &LaneVec::splat(1)),
            StoreOutcome::Compressed {
                line_miss: false,
                ..
            }
        ));
        // Adding a third line evicts the LRU (line 1).
        assert!(matches!(
            c.store(0, far(2), &LaneVec::splat(0)),
            StoreOutcome::Compressed {
                line_miss: true,
                ..
            }
        ));
        assert!(matches!(
            c.store(0, far(1), &LaneVec::splat(2)),
            StoreOutcome::Compressed {
                line_miss: true,
                ..
            }
        ));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Compressed::Constant(1).bytes(), 4);
        assert_eq!(Compressed::HalfStride1(0, 1).bytes(), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compression is lossless whenever it succeeds.
        #[test]
        fn compress_roundtrips(base: u32, step in prop_oneof![Just(0u32), Just(1), Just(4)]) {
            let v = LaneVec::stride(base, step);
            let c = Compressed::try_compress(&v).expect("strides compress");
            prop_assert_eq!(c.decompress(), v);
        }

        /// Arbitrary half-warp strides roundtrip.
        #[test]
        fn half_roundtrips(a: u32, b: u32, step in prop_oneof![Just(1u32), Just(4)]) {
            let mut v = LaneVec::zero();
            for i in 0..16 {
                v.set_lane(i, a.wrapping_add(step * i as u32));
            }
            for i in 16..32 {
                v.set_lane(i, b.wrapping_add(step * (i as u32 - 16)));
            }
            let c = Compressed::try_compress(&v).expect("half strides compress");
            prop_assert_eq!(c.decompress(), v);
        }

        /// Decompressing any compression of any value yields the value.
        #[test]
        fn no_false_matches(vals in proptest::collection::vec(any::<u32>(), 32)) {
            let mut v = LaneVec::zero();
            for (i, &x) in vals.iter().enumerate() {
                v.set_lane(i, x);
            }
            if let Some(c) = Compressed::try_compress(&v) {
                prop_assert_eq!(c.decompress(), v);
            }
        }
    }
}
