//! RegLess hardware configuration.

use regless_compiler::{RegionConfig, NUM_BANKS};
use regless_sim::GpuConfig;

/// Sizing of the RegLess structures in one SM.
///
/// The paper's chosen design point is 512 OSU entries per SM — 25 % of the
/// baseline 2048-entry register file — split across the four scheduler
/// shards into 8-bank OSUs of 16 lines each.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegLessConfig {
    /// Total OSU registers (128-byte lines) per SM, across all shards.
    pub osu_entries_per_sm: usize,
    /// Compressed-line cache entries per shard compressor (Table 1 lists
    /// 48 lines per SM).
    pub compressor_lines_per_shard: usize,
    /// Whether the compressor is present (the Figure 16 ablation removes
    /// it).
    pub compressor_enabled: bool,
    /// Re-activation order of drained warps (LIFO in the paper; FIFO is
    /// the `ablation_warp_order` comparison).
    pub activation_order: crate::cm::ActivationOrder,
    /// Pattern subset the compressor matches (ablation).
    pub compressor_patterns: crate::compressor::PatternSet,
}

impl RegLessConfig {
    /// The paper's 512-entry design point.
    pub fn paper_default() -> Self {
        RegLessConfig {
            osu_entries_per_sm: 512,
            compressor_lines_per_shard: 12,
            compressor_enabled: true,
            activation_order: crate::cm::ActivationOrder::Lifo,
            compressor_patterns: crate::compressor::PatternSet::Full,
        }
    }

    /// A design with `entries` OSU registers per SM (the Figure 11–13
    /// capacity sweep uses 128…2048).
    pub fn with_capacity(entries: usize) -> Self {
        RegLessConfig {
            osu_entries_per_sm: entries,
            ..Self::paper_default()
        }
    }

    /// Lines per OSU bank for a given GPU shape.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not divide evenly into at least one
    /// line per bank per shard.
    pub fn lines_per_bank(&self, gpu: &GpuConfig) -> usize {
        let per_shard = self.osu_entries_per_sm / gpu.schedulers_per_sm;
        let lines = per_shard / NUM_BANKS;
        assert!(
            lines > 0,
            "OSU capacity {} too small for {} shards of {} banks",
            self.osu_entries_per_sm,
            gpu.schedulers_per_sm,
            NUM_BANKS
        );
        lines
    }

    /// The region-creation limits matched to this OSU shape: a region may
    /// claim at most half a bank (minimum 4 registers, the widest single
    /// instruction) and at most an eighth of the shard's lines, "so that
    /// one region cannot take up too large a fraction of the OSU and limit
    /// concurrency" (paper §4.2).
    pub fn region_config(&self, gpu: &GpuConfig) -> RegionConfig {
        let lines_per_bank = self.lines_per_bank(gpu);
        let per_shard = lines_per_bank * NUM_BANKS;
        RegionConfig {
            max_regs_per_region: (per_shard / 8).clamp(5, 24),
            max_regs_per_bank: (lines_per_bank / 2).clamp(4, lines_per_bank),
            ..RegionConfig::default()
        }
    }
}

impl Default for RegLessConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

regless_json::impl_json_struct!(RegLessConfig {
    osu_entries_per_sm,
    compressor_lines_per_shard,
    compressor_enabled,
    activation_order,
    compressor_patterns,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point() {
        let c = RegLessConfig::paper_default();
        let gpu = GpuConfig::gtx980();
        // 512 entries / 4 shards / 8 banks = 16 lines per bank.
        assert_eq!(c.lines_per_bank(&gpu), 16);
        let rc = c.region_config(&gpu);
        assert_eq!(rc.max_regs_per_bank, 8);
        assert_eq!(rc.max_regs_per_region, 16);
    }

    #[test]
    fn small_capacity_tightens_regions() {
        let c = RegLessConfig::with_capacity(128);
        let gpu = GpuConfig::gtx980();
        assert_eq!(c.lines_per_bank(&gpu), 4);
        let rc = c.region_config(&gpu);
        assert_eq!(rc.max_regs_per_bank, 4);
        assert_eq!(rc.max_regs_per_region, 5);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_capacity_panics() {
        RegLessConfig::with_capacity(16).lines_per_bank(&GpuConfig::gtx980());
    }
}
