//! Dominator and postdominator analysis.

use regless_isa::{BlockId, Kernel, Opcode};

/// Dominator or postdominator sets for every block of a kernel, computed by
/// iterative bit-set dataflow.
///
/// A block *a* dominates *b* if every path from the entry to *b* passes
/// through *a*; it postdominates *b* if every path from *b* to an exit
/// passes through *a*. Both relations are reflexive here, matching the
/// paper's use of "strict" variants where self is explicitly excluded
/// (Algorithm 2 lines 3 and 5).
///
/// Blocks unreachable from the entry have empty dominator sets; blocks that
/// cannot reach an exit have empty postdominator sets.
#[derive(Clone, Debug)]
pub struct DomInfo {
    /// `doms[b]` = bitmap of blocks dominating `b` (including `b`).
    doms: Vec<Vec<u64>>,
    /// `pdoms[b]` = bitmap of blocks postdominating `b` (including `b`).
    pdoms: Vec<Vec<u64>>,
    num_blocks: usize,
}

fn full(n: usize) -> Vec<u64> {
    let mut v = vec![u64::MAX; n.div_ceil(64)];
    if !n.is_multiple_of(64) {
        *v.last_mut().expect("non-empty") = (1u64 << (n % 64)) - 1;
    }
    v
}

fn only(n: usize, b: usize) -> Vec<u64> {
    let mut v = vec![0u64; n.div_ceil(64)];
    v[b / 64] |= 1 << (b % 64);
    v
}

fn has(set: &[u64], b: usize) -> bool {
    set[b / 64] & (1 << (b % 64)) != 0
}

/// Solves `out[b] = {b} ∪ ⋂_{p ∈ ins(b)} out[p]` with `out[root] = {root}`,
/// the classic iterative dominance formulation.
fn solve(num_blocks: usize, roots: &[usize], ins: &[Vec<usize>], order: &[usize]) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = (0..num_blocks).map(|_| full(num_blocks)).collect();
    for &r in roots {
        out[r] = only(num_blocks, r);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order {
            if roots.contains(&b) {
                continue;
            }
            let mut next = if ins[b].is_empty() {
                // Unreachable in this direction: no block relates to it.
                vec![0; num_blocks.div_ceil(64)]
            } else {
                let mut acc = out[ins[b][0]].clone();
                for &p in &ins[b][1..] {
                    for (a, q) in acc.iter_mut().zip(&out[p]) {
                        *a &= q;
                    }
                }
                acc
            };
            let bit = &mut next[b / 64];
            *bit |= 1 << (b % 64);
            if next != out[b] {
                out[b] = next;
                changed = true;
            }
        }
    }
    out
}

impl DomInfo {
    /// Compute dominators and postdominators for `kernel`.
    ///
    /// Postdominators treat every block containing an `Exit` terminator as a
    /// root of the reversed CFG.
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.num_blocks();
        let preds: Vec<Vec<usize>> = kernel
            .predecessors()
            .into_iter()
            .map(|ps| ps.into_iter().map(BlockId::index).collect())
            .collect();
        let succs: Vec<Vec<usize>> = kernel
            .blocks()
            .iter()
            .map(|b| b.successors().into_iter().map(BlockId::index).collect())
            .collect();

        let forward_order: Vec<usize> = (0..n).collect();
        let backward_order: Vec<usize> = (0..n).rev().collect();

        let exits: Vec<usize> = kernel
            .blocks()
            .iter()
            .filter(|b| matches!(b.terminator().op(), Opcode::Exit))
            .map(|b| b.id().index())
            .collect();

        let doms = solve(n, &[kernel.entry().index()], &preds, &forward_order);
        let pdoms = solve(n, &exits, &succs, &backward_order);
        DomInfo {
            doms,
            pdoms,
            num_blocks: n,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        has(&self.doms[b.index()], a.index())
    }

    /// Whether `a` postdominates `b` (reflexively).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        has(&self.pdoms[b.index()], a.index())
    }

    /// All blocks dominating `b`, including `b` itself.
    pub fn dominators(&self, b: BlockId) -> Vec<BlockId> {
        (0..self.num_blocks)
            .filter(|&a| has(&self.doms[b.index()], a))
            .map(|a| BlockId(a as u32))
            .collect()
    }

    /// All blocks postdominating `b`, including `b` itself.
    pub fn postdominators(&self, b: BlockId) -> Vec<BlockId> {
        (0..self.num_blocks)
            .filter(|&a| has(&self.pdoms[b.index()], a))
            .map(|a| BlockId(a as u32))
            .collect()
    }

    /// The immediate postdominator of `b`: the unique strict postdominator
    /// postdominated by every other strict postdominator of `b`. `None` for
    /// exit blocks and blocks that reach no exit.
    ///
    /// The simulator uses this as the SIMT reconvergence point of divergent
    /// branches.
    pub fn immediate_postdominator(&self, b: BlockId) -> Option<BlockId> {
        let strict: Vec<BlockId> = self
            .postdominators(b)
            .into_iter()
            .filter(|&p| p != b)
            .collect();
        strict
            .iter()
            .copied()
            .find(|&cand| strict.iter().all(|&other| self.postdominates(other, cand)))
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regless_isa::{Kernel, KernelBuilder};

    /// Naive dominance: a dominates b iff removing a disconnects b from the
    /// entry (checked by reachability with a excluded).
    fn naive_dominates(kernel: &Kernel, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        // BFS from entry avoiding `a`.
        let mut seen = vec![false; kernel.num_blocks()];
        let mut queue = vec![kernel.entry().index()];
        while let Some(n) = queue.pop() {
            if n == a || seen[n] {
                continue;
            }
            seen[n] = true;
            for s in kernel.block(BlockId(n as u32)).successors() {
                queue.push(s.index());
            }
        }
        // b unreachable without a, but reachable at all.
        let reachable_with_a = {
            let mut seen2 = vec![false; kernel.num_blocks()];
            let mut q = vec![kernel.entry().index()];
            while let Some(n) = q.pop() {
                if seen2[n] {
                    continue;
                }
                seen2[n] = true;
                for s in kernel.block(BlockId(n as u32)).successors() {
                    q.push(s.index());
                }
            }
            seen2[b]
        };
        reachable_with_a && !seen[b]
    }

    /// Random structured CFGs: nested diamonds and chains.
    fn arb_cfg() -> impl Strategy<Value = Kernel> {
        proptest::collection::vec(any::<bool>(), 1..6).prop_map(|shape| {
            let mut b = KernelBuilder::new("cfg");
            let c = b.movi(1);
            for diamond in shape {
                if diamond {
                    let t = b.new_block();
                    let e = b.new_block();
                    let j = b.new_block();
                    b.bra(c, t, e);
                    b.select(t);
                    b.jmp(j);
                    b.select(e);
                    b.jmp(j);
                    b.select(j);
                } else {
                    let n = b.new_block();
                    b.jmp(n);
                    b.select(n);
                }
            }
            b.exit();
            b.finish().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The iterative dominator solution matches the path-based
        /// definition on every block pair.
        #[test]
        fn dominators_match_naive(kernel in arb_cfg()) {
            let d = DomInfo::compute(&kernel);
            let n = kernel.num_blocks();
            for a in 0..n {
                for b in 0..n {
                    let fast = d.dominates(BlockId(a as u32), BlockId(b as u32));
                    let naive = naive_dominates(&kernel, a, b);
                    prop_assert_eq!(fast, naive, "dominates({}, {})", a, b);
                }
            }
        }

        /// Postdominance is dominance on the reversed CFG: verified via the
        /// reflexivity/transitivity axioms and the exit property.
        #[test]
        fn postdominator_axioms(kernel in arb_cfg()) {
            let d = DomInfo::compute(&kernel);
            let n = kernel.num_blocks() as u32;
            let exit = BlockId(n - 1);
            for b in 0..n {
                let b = BlockId(b);
                prop_assert!(d.postdominates(b, b), "reflexive");
                prop_assert!(d.postdominates(exit, b), "exit postdominates all");
            }
            for a in 0..n {
                for b in 0..n {
                    for c in 0..n {
                        let (a, b, c) = (BlockId(a), BlockId(b), BlockId(c));
                        if d.postdominates(a, b) && d.postdominates(b, c) {
                            prop_assert!(d.postdominates(a, c), "transitive");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::KernelBuilder;

    /// bb0 -> (bb1 | bb2) -> bb3(exit)
    fn diamond() -> Kernel {
        let mut b = KernelBuilder::new("diamond");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.movi(1);
        b.bra(c, t, e);
        b.select(t);
        b.jmp(j);
        b.select(e);
        b.jmp(j);
        b.select(j);
        b.exit();
        b.finish().unwrap()
    }

    /// bb0 -> bb1 (loop on itself) -> bb2(exit)
    fn looped() -> Kernel {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let done = b.new_block();
        let c = b.movi(1);
        b.jmp(body);
        b.select(body);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let k = diamond();
        let d = DomInfo::compute(&k);
        let bb = |i| BlockId(i);
        assert!(d.dominates(bb(0), bb(3)));
        assert!(!d.dominates(bb(1), bb(3)));
        assert!(d.dominates(bb(0), bb(0)));
        assert_eq!(d.dominators(bb(1)), vec![bb(0), bb(1)]);
    }

    #[test]
    fn diamond_postdominators() {
        let k = diamond();
        let d = DomInfo::compute(&k);
        let bb = |i| BlockId(i);
        assert!(d.postdominates(bb(3), bb(0)));
        assert!(d.postdominates(bb(3), bb(1)));
        assert!(!d.postdominates(bb(1), bb(0)));
        assert_eq!(d.immediate_postdominator(bb(0)), Some(bb(3)));
        assert_eq!(d.immediate_postdominator(bb(3)), None);
    }

    #[test]
    fn loop_dominators() {
        let k = looped();
        let d = DomInfo::compute(&k);
        let bb = |i| BlockId(i);
        assert!(d.dominates(bb(0), bb(1)));
        assert!(d.dominates(bb(1), bb(2)));
        assert!(d.postdominates(bb(2), bb(1)));
        assert_eq!(d.immediate_postdominator(bb(1)), Some(bb(2)));
    }

    #[test]
    fn straight_line_chain() {
        let mut b = KernelBuilder::new("chain");
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.jmp(b1);
        b.select(b1);
        b.jmp(b2);
        b.select(b2);
        b.exit();
        let k = b.finish().unwrap();
        let d = DomInfo::compute(&k);
        assert_eq!(d.immediate_postdominator(BlockId(0)), Some(BlockId(1)));
        assert!(d.dominates(BlockId(1), BlockId(2)));
        assert!(d.postdominates(BlockId(2), BlockId(0)));
    }
}
