//! Region creation (Algorithm 1 of the paper).
//!
//! A *region* is a contiguous range of instructions within one basic block,
//! scheduled atomically by the RegLess hardware: before a warp may issue the
//! region's first instruction, all of the region's *input* registers must be
//! staged in the OSU and space reserved for its *interior* registers.
//! Region boundaries are chosen at points with few live registers so that
//! most values never cross a boundary (and therefore never touch memory).

use crate::dom::DomInfo;
use crate::liveness::Liveness;
use crate::regset::RegSet;
use regless_isa::{BlockId, InsnRef, Kernel, Reg};
use std::fmt;

/// Number of banks in each operand staging unit (paper §5.2).
pub const NUM_BANKS: usize = 8;

/// Identifier of a region within a compiled kernel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The region's index in the compiled kernel's region list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Tuning knobs for region creation.
///
/// Defaults correspond to the paper's 512-register-per-SM configuration:
/// each of the four scheduler shards owns a 128-entry OSU of 8 banks
/// (16 lines per bank), one region may claim at most half an OSU, and no
/// more than half of any single bank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegionConfig {
    /// Maximum concurrently-live registers a region may require
    /// (Algorithm 1 line 18).
    pub max_regs_per_region: usize,
    /// Maximum registers a region may map to one OSU bank (line 20).
    pub max_regs_per_bank: usize,
    /// Minimum region length in instructions, the paper's
    /// `startPC + 48` bytes (six 8-byte instructions), used to avoid
    /// degenerately small regions.
    pub min_region_insns: usize,
    /// Whether a global load and its first use may not share a region
    /// (line 22). Disabling this is the `ablation_load_split` experiment.
    pub split_load_use: bool,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            max_regs_per_region: 24,
            max_regs_per_bank: 8,
            min_region_insns: 6,
            split_load_use: true,
        }
    }
}

regless_json::impl_json_struct!(RegionConfig {
    max_regs_per_region,
    max_regs_per_bank,
    min_region_insns,
    split_load_use,
});

/// One register to assemble in the OSU before a region activates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Preload {
    /// The register to stage.
    pub reg: Reg,
    /// Whether this preload is the last read of the incoming value, letting
    /// the memory-side copy be invalidated (an *invalidating read*).
    pub invalidate: bool,
}

/// A compiled region with its register classification and OSU demand.
#[derive(Clone, Debug)]
pub struct Region {
    id: RegionId,
    block: BlockId,
    start: usize,
    end: usize,
    inputs: RegSet,
    outputs: RegSet,
    interior: RegSet,
    preloads: Vec<Preload>,
    max_concurrent: usize,
    bank_usage: [u16; NUM_BANKS],
    contains_global_load: bool,
}

impl Region {
    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The containing basic block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Index of the first instruction (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Index one past the last instruction.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of instructions in the region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the instruction index `idx` of the region's block falls in
    /// this region.
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }

    /// Registers produced outside and read (or partially written) inside:
    /// these must be staged before activation.
    pub fn inputs(&self) -> &RegSet {
        &self.inputs
    }

    /// Registers defined inside and live past the region's end.
    pub fn outputs(&self) -> &RegSet {
        &self.outputs
    }

    /// Registers whose entire lifetime lies inside the region; they never
    /// move to memory.
    pub fn interior(&self) -> &RegSet {
        &self.interior
    }

    /// The preload list (the region's inputs with invalidation flags).
    pub fn preloads(&self) -> &[Preload] {
        &self.preloads
    }

    /// Peak number of concurrently-live region registers: the OSU
    /// allocation the capacity manager reserves (Figure 19's "mean/std"
    /// series is over this value).
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// Peak concurrently-live registers per OSU bank (the "bank usage"
    /// annotation of Figure 6).
    pub fn bank_usage(&self) -> &[u16; NUM_BANKS] {
        &self.bank_usage
    }

    /// Whether the region contains at least one global load.
    pub fn contains_global_load(&self) -> bool {
        self.contains_global_load
    }
}

/// The OSU bank a register maps to. At run time the hardware adds the warp
/// id before taking the low bits; the compiler's validity check uses the
/// register number alone, which the warp offset merely rotates.
#[inline]
pub fn bank_of(reg: Reg) -> usize {
    reg.index() % NUM_BANKS
}

/// Measurements of a candidate region used by `IsValid`.
struct Demand {
    max_concurrent: usize,
    bank_peak: [u16; NUM_BANKS],
    load_use_pairs: usize,
}

/// Context for analyzing candidate regions of one block.
struct BlockCtx<'a> {
    kernel: &'a Kernel,
    liveness: &'a Liveness,
    block: BlockId,
}

impl<'a> BlockCtx<'a> {
    fn insns(&self) -> &'a [regless_isa::Instruction] {
        self.kernel.block(self.block).insns()
    }

    /// Registers referenced (read or written) in `[start, end)`.
    fn referenced(&self, start: usize, end: usize) -> RegSet {
        let mut set = RegSet::new(self.liveness.num_regs());
        for insn in &self.insns()[start..end] {
            for &s in insn.srcs() {
                set.insert(s);
            }
            if let Some(d) = insn.dst() {
                set.insert(d);
            }
        }
        set
    }

    /// Live registers *relevant to the candidate region* at each point, and
    /// the resulting peak demands.
    fn demand(&self, start: usize, end: usize) -> Demand {
        let referenced = self.referenced(start, end);
        let mut max_concurrent = 0;
        let mut bank_peak = [0u16; NUM_BANKS];
        for idx in start..end {
            let at = InsnRef {
                block: self.block,
                idx,
            };
            let mut banks = [0u16; NUM_BANKS];
            let mut count = 0;
            for r in referenced.iter() {
                if self.liveness.live_before(at).contains(r) {
                    count += 1;
                    banks[bank_of(r)] += 1;
                }
            }
            // The destination occupies an OSU line from the write onward;
            // include it at the defining instruction so single-point peaks
            // are not undercounted.
            if let Some(d) = self.insns()[idx].dst() {
                if !self.liveness.live_before(at).contains(d) {
                    count += 1;
                    banks[bank_of(d)] += 1;
                }
            }
            max_concurrent = max_concurrent.max(count);
            for b in 0..NUM_BANKS {
                bank_peak[b] = bank_peak[b].max(banks[b]);
            }
        }
        Demand {
            max_concurrent,
            bank_peak,
            load_use_pairs: self.load_use_pairs(start, end),
        }
    }

    /// Number of (global load, first use) pairs fully contained in
    /// `[start, end)`.
    fn load_use_pairs(&self, start: usize, end: usize) -> usize {
        let insns = self.insns();
        let mut pairs = 0;
        for li in start..end {
            if !insns[li].is_global_load() {
                continue;
            }
            let dst = insns[li].dst().expect("loads have destinations");
            for insn in &insns[li + 1..end] {
                if insn.srcs().contains(&dst) {
                    pairs += 1;
                    break;
                }
                if insn.dst() == Some(dst) {
                    break; // redefined before any use
                }
            }
        }
        pairs
    }

    fn is_valid(&self, start: usize, end: usize, config: &RegionConfig) -> bool {
        let d = self.demand(start, end);
        if d.max_concurrent > config.max_regs_per_region {
            return false;
        }
        if d.bank_peak
            .iter()
            .any(|&b| b as usize > config.max_regs_per_bank)
        {
            return false;
        }
        if config.split_load_use && d.load_use_pairs > 0 {
            return false;
        }
        // A barrier must end its region: a warp parked at a barrier then
        // holds no OSU reservation, so stalled warps can never starve the
        // capacity manager of space (deadlock freedom).
        if self.insns()[start..end.saturating_sub(1)]
            .iter()
            .any(|i| matches!(i.op(), regless_isa::Opcode::Bar))
        {
            return false;
        }
        true
    }

    /// `FindSplitPoint` (Algorithm 1 lines 28–33): returns the index the
    /// region `[start, end)` should be split at, `start < split < end`.
    fn find_split_point(&self, start: usize, end: usize, config: &RegionConfig) -> usize {
        // upper_bound: the largest split index keeping the first region
        // valid — i.e. the first instruction whose inclusion breaks it.
        let mut upper = end - 1;
        for idx in start + 1..=end {
            if !self.is_valid(start, idx, config) {
                upper = idx - 1;
                break;
            }
        }
        let upper = upper.max(start + 1); // always make progress
                                          // lower_bound: split index in (start, upper] minimizing the number
                                          // of load/use pairs kept within either new region.
        let mut lower = start + 1;
        let mut best_pairs = usize::MAX;
        for split in start + 1..=upper {
            let pairs = self.load_use_pairs(start, split) + self.load_use_pairs(split, end);
            if pairs < best_pairs {
                best_pairs = pairs;
                lower = split;
            }
        }
        // Avoid degenerately small regions when possible.
        let lower = lower.max(start + config.min_region_insns).min(upper);
        // Final choice: the split in [lower, upper] with the fewest combined
        // input and output registers in the two new regions.
        let mut best = lower;
        let mut best_io = usize::MAX;
        for split in lower..=upper {
            let io = self.io_count(start, split) + self.io_count(split, end);
            if io < best_io {
                best_io = io;
                best = split;
            }
        }
        best
    }

    /// Combined input + output register count of candidate `[start, end)`.
    fn io_count(&self, start: usize, end: usize) -> usize {
        let (inputs, outputs, _) = self.classify(start, end);
        inputs.len() + outputs.len()
    }

    /// Classify the candidate's referenced registers into
    /// (inputs, outputs, interior).
    #[allow(clippy::needless_range_loop)] // idx also forms `InsnRef`s
    fn classify(&self, start: usize, end: usize) -> (RegSet, RegSet, RegSet) {
        let num_regs = self.liveness.num_regs();
        let insns = self.insns();
        let mut inputs = RegSet::new(num_regs);
        let mut defined = RegSet::new(num_regs);
        for idx in start..end {
            let at = InsnRef {
                block: self.block,
                idx,
            };
            let insn = &insns[idx];
            for &s in insn.srcs() {
                if !defined.contains(s) {
                    inputs.insert(s);
                }
            }
            if let Some(d) = insn.dst() {
                // A soft definition merges with lanes of the incoming value,
                // so the old value must be staged: it is an input (§4.4).
                if self.liveness.is_soft_def(at) && !defined.contains(d) {
                    inputs.insert(d);
                }
                defined.insert(d);
            }
        }
        let live_end = if end < insns.len() {
            self.liveness
                .live_before(InsnRef {
                    block: self.block,
                    idx: end,
                })
                .clone()
        } else {
            self.liveness.live_out(self.block).clone()
        };
        let mut outputs = defined.clone();
        outputs.intersect_with(&live_end);
        let mut interior = self.referenced(start, end);
        interior.subtract(&inputs);
        interior.subtract(&outputs);
        (inputs, outputs, interior)
    }

    /// Whether the incoming value of input `reg` dies within `[start, end)`:
    /// either a hard definition replaces it, or the register is dead at the
    /// region's end *and* no divergent sibling path can still read it.
    /// When true, the preload is an invalidating read.
    #[allow(clippy::needless_range_loop)] // idx also forms `InsnRef`s
    fn incoming_value_dies(&self, reg: Reg, start: usize, end: usize) -> bool {
        if self.liveness.live_on_divergent_sibling(self.block, reg) {
            return false;
        }
        let insns = self.insns();
        for idx in start..end {
            let at = InsnRef {
                block: self.block,
                idx,
            };
            if insns[idx].dst() == Some(reg) && !self.liveness.is_soft_def(at) {
                return true;
            }
        }
        let live_end = if end < insns.len() {
            self.liveness.live_before(InsnRef {
                block: self.block,
                idx: end,
            })
        } else {
            self.liveness.live_out(self.block)
        };
        !live_end.contains(reg)
    }

    fn build(&self, id: RegionId, start: usize, end: usize) -> Region {
        let (inputs, outputs, interior) = self.classify(start, end);
        let d = self.demand(start, end);
        let preloads = inputs
            .iter()
            .map(|reg| Preload {
                reg,
                invalidate: self.incoming_value_dies(reg, start, end),
            })
            .collect();
        let contains_global_load = self.insns()[start..end].iter().any(|i| i.is_global_load());
        Region {
            id,
            block: self.block,
            start,
            end,
            inputs,
            outputs,
            interior,
            preloads,
            max_concurrent: d.max_concurrent,
            bank_usage: d.bank_peak,
            contains_global_load,
        }
    }
}

/// `CreateRegions` (Algorithm 1): slice every basic block of `kernel` into
/// valid regions.
///
/// Returns regions sorted by (block, start); region ids are their indices
/// in the returned vector.
///
/// # Panics
///
/// Panics if `config` is unsatisfiable for this kernel (a single
/// instruction exceeding the per-region register limits).
pub fn create_regions(kernel: &Kernel, liveness: &Liveness, config: &RegionConfig) -> Vec<Region> {
    let mut ranges: Vec<(BlockId, usize, usize)> = Vec::new();
    for block in kernel.blocks() {
        let ctx = BlockCtx {
            kernel,
            liveness,
            block: block.id(),
        };
        let mut worklist = vec![(0usize, block.len())];
        let mut done: Vec<(usize, usize)> = Vec::new();
        while let Some((start, end)) = worklist.pop() {
            if ctx.is_valid(start, end, config) {
                done.push((start, end));
            } else {
                assert!(
                    end - start > 1,
                    "single instruction at {}:{start} violates region limits — \
                     RegionConfig too small for kernel {}",
                    block.id(),
                    kernel.name()
                );
                let split = ctx.find_split_point(start, end, config);
                // First half is valid by construction of the split window;
                // the second half must be re-examined.
                done.push((start, split));
                worklist.push((split, end));
            }
        }
        done.sort_unstable();
        for (s, e) in done {
            ranges.push((block.id(), s, e));
        }
    }
    ranges
        .into_iter()
        .enumerate()
        .map(|(i, (b, s, e))| {
            let ctx = BlockCtx {
                kernel,
                liveness,
                block: b,
            };
            ctx.build(RegionId(i as u32), s, e)
        })
        .collect()
}

/// Convenience: compute liveness then regions.
pub fn regions_for(kernel: &Kernel, config: &RegionConfig) -> (Liveness, Vec<Region>) {
    let dom = DomInfo::compute(kernel);
    let liveness = Liveness::compute(kernel, &dom);
    let regions = create_regions(kernel, &liveness, config);
    (liveness, regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::KernelBuilder;

    fn compile(k: &Kernel, config: &RegionConfig) -> (Liveness, Vec<Region>) {
        regions_for(k, config)
    }

    /// A load and its use must land in different regions.
    #[test]
    fn load_use_split() {
        let mut b = KernelBuilder::new("loaduse");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let w = b.iadd(v, v);
        b.st_global(w, i);
        b.exit();
        let k = b.finish().unwrap();
        let (_, regions) = compile(&k, &RegionConfig::default());
        assert!(regions.len() >= 2, "expected a split, got {regions:#?}");
        for r in &regions {
            let ctx_pairs = r.len(); // sanity: regions are non-empty
            assert!(ctx_pairs > 0);
        }
        // The load's destination must be an input of a later region.
        let user = regions
            .iter()
            .find(|r| r.inputs().contains(regless_isa::Reg(1)))
            .expect("some region takes the loaded value as input");
        assert!(user.start() >= 2);
    }

    #[test]
    fn load_use_split_can_be_disabled() {
        let mut b = KernelBuilder::new("loaduse2");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let w = b.iadd(v, v);
        b.st_global(w, i);
        b.exit();
        let k = b.finish().unwrap();
        let config = RegionConfig {
            split_load_use: false,
            ..RegionConfig::default()
        };
        let (_, regions) = compile(&k, &config);
        assert_eq!(regions.len(), 1);
    }

    /// Interior registers never appear as inputs or outputs.
    #[test]
    fn classification_is_partition() {
        let mut b = KernelBuilder::new("classify");
        let x = b.movi(3);
        let y = b.movi(4);
        let t = b.iadd(x, y); // interior if consumed below
        let u = b.imul(t, t);
        b.st_global(u, x);
        b.exit();
        let k = b.finish().unwrap();
        let (_, regions) = compile(&k, &RegionConfig::default());
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert!(r.inputs().is_empty());
        assert!(r.outputs().is_empty());
        assert_eq!(r.interior().len(), 4);
        assert!(!r.interior().intersects(r.inputs()));
    }

    /// Register pressure above the limit forces a split at a low-liveness
    /// seam.
    #[test]
    fn pressure_split() {
        let mut b = KernelBuilder::new("pressure");
        // Build a deep expression: 10 independent values, then a reduction.
        let vals: Vec<_> = (0..10).map(|i| b.movi(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.iadd(acc, v);
        }
        // Low-liveness seam here: only `acc` lives.
        let vals2: Vec<_> = (0..10).map(|i| b.movi(100 + i)).collect();
        let mut acc2 = vals2[0];
        for &v in &vals2[1..] {
            acc2 = b.iadd(acc2, v);
        }
        let out = b.iadd(acc, acc2);
        b.st_global(out, out);
        b.exit();
        let k = b.finish().unwrap();
        let config = RegionConfig {
            max_regs_per_region: 8,
            ..RegionConfig::default()
        };
        let (_, regions) = compile(&k, &config);
        assert!(regions.len() >= 2);
        for r in &regions {
            assert!(r.max_concurrent() <= 8, "region {:?} too big", r.id());
        }
    }

    /// Regions tile each block exactly.
    #[test]
    fn regions_tile_blocks() {
        let mut b = KernelBuilder::new("tile");
        let next = b.new_block();
        let i = b.thread_idx();
        let v = b.ld_global(i);
        b.jmp(next);
        b.select(next);
        let w = b.iadd(v, v);
        b.st_global(w, i);
        b.exit();
        let k = b.finish().unwrap();
        let (_, regions) = compile(&k, &RegionConfig::default());
        for block in k.blocks() {
            let mut covered = vec![false; block.len()];
            for r in regions.iter().filter(|r| r.block() == block.id()) {
                for (i, c) in covered.iter_mut().enumerate().take(r.end()).skip(r.start()) {
                    assert!(!*c, "overlap at {}:{}", block.id(), i);
                    *c = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in {}", block.id());
        }
    }

    /// Preloads whose value dies in the region are invalidating reads.
    #[test]
    fn invalidating_preloads() {
        let mut b = KernelBuilder::new("inval");
        let next = b.new_block();
        let x = b.movi(1);
        let y = b.movi(2);
        b.jmp(next);
        b.select(next);
        let _ = b.iadd(x, y); // last use of both x and y
        b.exit();
        let k = b.finish().unwrap();
        let (_, regions) = compile(&k, &RegionConfig::default());
        let second = regions.iter().find(|r| r.block() == next).unwrap();
        assert_eq!(second.preloads().len(), 2);
        assert!(second.preloads().iter().all(|p| p.invalidate));
    }

    /// A value still live after the region gets a non-invalidating preload.
    #[test]
    fn persistent_preload_not_invalidating() {
        let mut b = KernelBuilder::new("persist");
        let mid = b.new_block();
        let last = b.new_block();
        let x = b.movi(1);
        b.jmp(mid);
        b.select(mid);
        let _ = b.iadd(x, x);
        b.jmp(last);
        b.select(last);
        let _ = b.imul(x, x);
        b.exit();
        let k = b.finish().unwrap();
        let (_, regions) = compile(&k, &RegionConfig::default());
        let mid_region = regions.iter().find(|r| r.block() == mid).unwrap();
        let p = mid_region.preloads().iter().find(|p| p.reg == x).unwrap();
        assert!(!p.invalidate, "x is used again later");
        let last_region = regions.iter().find(|r| r.block() == last).unwrap();
        let p = last_region.preloads().iter().find(|p| p.reg == x).unwrap();
        assert!(p.invalidate, "final use invalidates");
    }

    #[test]
    fn bank_usage_respects_limit() {
        let mut b = KernelBuilder::new("banks");
        let vals: Vec<_> = (0..32).map(|i| b.movi(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.iadd(acc, v);
        }
        b.st_global(acc, acc);
        b.exit();
        let k = b.finish().unwrap();
        let config = RegionConfig {
            max_regs_per_region: 64,
            max_regs_per_bank: 3,
            ..RegionConfig::default()
        };
        let (_, regions) = compile(&k, &config);
        for r in &regions {
            assert!(r.bank_usage().iter().all(|&u| u <= 3));
        }
    }
}
