//! Register-lifetime annotations (paper §4.3–4.4, Figure 6).
//!
//! The compiler tells the hardware when register values die so that neither
//! the OSU nor the L1 retains dead data:
//!
//! * **erase** — last use of an *interior* register: its OSU line is freed
//!   immediately.
//! * **evict** — last use *within the region* of an input/output register:
//!   the line becomes *eligible* for eviction (it is not forced out).
//! * **invalidating preload** — a preload that is the last read of the
//!   incoming value (carried on [`crate::Preload::invalidate`]).
//! * **cache invalidate** — at a region start that postdominates all
//!   definitions and death points of a cross-region register, the register's
//!   L1 copy is deleted.

use crate::dom::DomInfo;
use crate::liveness::Liveness;
use crate::region::{Region, RegionId};
use crate::regset::RegSet;
use regless_isa::{BlockId, InsnRef, Kernel, Reg};
use std::collections::HashMap;

/// How a source operand's last use within a region is handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LastUse {
    /// Interior register: free the OSU line outright.
    Erase,
    /// Input/output register: the line becomes eligible for eviction.
    Evict,
}

/// Annotations attached to one instruction.
#[derive(Clone, Debug, Default)]
pub struct InsnNotes {
    /// Source registers for which this instruction is the last access in
    /// its region, with the action to take after the read.
    pub last_uses: Vec<(Reg, LastUse)>,
    /// The write is the region's last access of the destination and the
    /// destination is an output: mark the line dirty and evictable as soon
    /// as the value is written back (§5.2.2).
    pub evict_on_write: bool,
    /// The write is the region's last access of an interior destination
    /// (a dead store): the line can be freed on writeback.
    pub erase_on_write: bool,
}

impl InsnNotes {
    fn is_default(&self) -> bool {
        self.last_uses.is_empty() && !self.evict_on_write && !self.erase_on_write
    }
}

/// All lifetime annotations for one compiled kernel.
#[derive(Clone, Debug)]
pub struct Annotations {
    notes: HashMap<InsnRef, InsnNotes>,
    /// Per region: registers whose L1 copies are invalidated when the
    /// region starts.
    cache_invalidates: Vec<Vec<Reg>>,
}

impl Annotations {
    /// Notes for one instruction, if any.
    pub fn notes(&self, at: InsnRef) -> Option<&InsnNotes> {
        self.notes.get(&at)
    }

    /// Registers invalidated in the L1 when `region` begins.
    pub fn cache_invalidates(&self, region: RegionId) -> &[Reg] {
        &self.cache_invalidates[region.index()]
    }

    /// Total number of annotated instructions (used in tests and stats).
    pub fn annotated_insns(&self) -> usize {
        self.notes.len()
    }
}

/// Compute all annotations for the kernel's regions.
pub fn annotate(
    kernel: &Kernel,
    dom: &DomInfo,
    liveness: &Liveness,
    regions: &[Region],
) -> Annotations {
    let mut notes = HashMap::new();
    for region in regions {
        annotate_region(kernel, liveness, region, &mut notes);
    }
    let cache_invalidates = place_cache_invalidates(kernel, dom, liveness, regions);
    Annotations {
        notes,
        cache_invalidates,
    }
}

/// Mark last uses within one region by a backward sweep.
///
/// The action at a register's last access is decided by *liveness*, not by
/// the input/interior classification alone: a staged value that is dead on
/// every path (an interior temporary, or an input whose incoming value dies
/// here) is **erased** — keeping it would eventually spill a dead value to
/// the L1. Only values still live past the access become **evictable**.
fn annotate_region(
    kernel: &Kernel,
    liveness: &Liveness,
    region: &Region,
    notes: &mut HashMap<InsnRef, InsnNotes>,
) {
    let insns = kernel.block(region.block()).insns();
    let mut accessed_later = RegSet::new(kernel.num_regs() as usize);
    for idx in (region.start()..region.end()).rev() {
        let insn = &insns[idx];
        let at = InsnRef {
            block: region.block(),
            idx,
        };
        let mut note = InsnNotes::default();
        let safe_dead = |r| {
            !liveness.live_after(at).contains(r)
                && !liveness.live_on_divergent_sibling(region.block(), r)
        };
        if let Some(d) = insn.dst() {
            if !accessed_later.contains(d) {
                if safe_dead(d) {
                    note.erase_on_write = true; // dead store
                } else if region.outputs().contains(d) {
                    note.evict_on_write = true;
                }
            }
            accessed_later.insert(d);
        }
        for &s in insn.srcs() {
            // Reading and rewriting the same register in one instruction
            // keeps the line busy: the write, not the read, is the last
            // access, and it was handled above.
            if !accessed_later.contains(s) && insn.dst() != Some(s) {
                let kind = if safe_dead(s) {
                    LastUse::Erase
                } else {
                    LastUse::Evict
                };
                note.last_uses.push((s, kind));
            }
            accessed_later.insert(s);
        }
        if !note.is_default() {
            notes.insert(at, note);
        }
    }
}

/// Place cache invalidations for cross-region registers at the nearest
/// block postdominating every definition and death point where the register
/// is no longer live (paper §4.4; the approach of Jeon et al. extended with
/// divergence-aware liveness).
fn place_cache_invalidates(
    kernel: &Kernel,
    dom: &DomInfo,
    liveness: &Liveness,
    regions: &[Region],
) -> Vec<Vec<Reg>> {
    let mut out = vec![Vec::new(); regions.len()];
    // Only registers that may ever reach the L1 need cache invalidation.
    let mut cross = RegSet::new(kernel.num_regs() as usize);
    for r in regions {
        cross.union_with(r.inputs());
        cross.union_with(r.outputs());
    }
    // First region of each block, for attaching the annotation.
    let mut first_region_of_block: HashMap<BlockId, RegionId> = HashMap::new();
    for r in regions {
        first_region_of_block
            .entry(r.block())
            .and_modify(|cur| {
                if r.start() == 0 {
                    *cur = r.id();
                }
            })
            .or_insert(r.id());
    }

    for reg in cross.iter() {
        // A death at a last use is already handled by the erase/evict and
        // invalidating-preload annotations; the cache-invalidate fallback
        // is only needed when control flow kills the value (a death edge:
        // live out of a block but dead into one of its successors).
        let mut anchor_blocks: Vec<BlockId> = Vec::new();
        let mut has_death_edge = false;
        for block in kernel.blocks() {
            // Definition blocks.
            if block.insns().iter().any(|i| i.dst() == Some(reg)) {
                anchor_blocks.push(block.id());
            }
            for succ in block.successors() {
                if liveness.live_out(block.id()).contains(reg)
                    && !liveness.live_in(succ).contains(reg)
                {
                    anchor_blocks.push(succ);
                    has_death_edge = true;
                }
            }
        }
        if !has_death_edge || anchor_blocks.is_empty() {
            continue;
        }
        // Common postdominators of all anchors form a chain; pick the
        // nearest one where the register is dead on entry.
        let mut candidates: Vec<BlockId> = (0..kernel.num_blocks() as u32)
            .map(BlockId)
            .filter(|&p| anchor_blocks.iter().all(|&a| dom.postdominates(p, a)))
            .filter(|&p| !liveness.live_in(p).contains(reg))
            .collect();
        candidates.retain(|&c| !anchor_blocks.contains(&c) || !liveness.live_in(c).contains(reg));
        let nearest = candidates
            .iter()
            .copied()
            .find(|&c| candidates.iter().all(|&o| dom.postdominates(o, c)));
        if let Some(block) = nearest {
            if let Some(&rid) = first_region_of_block.get(&block) {
                out[rid.index()].push(reg);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{create_regions, RegionConfig};
    use regless_isa::KernelBuilder;

    struct Compiled {
        kernel: Kernel,
        regions: Vec<Region>,
        ann: Annotations,
    }

    fn compile(kernel: Kernel) -> Compiled {
        let dom = DomInfo::compute(&kernel);
        let liveness = Liveness::compute(&kernel, &dom);
        let regions = create_regions(&kernel, &liveness, &RegionConfig::default());
        let ann = annotate(&kernel, &dom, &liveness, &regions);
        Compiled {
            kernel,
            regions,
            ann,
        }
    }

    #[test]
    fn interior_last_use_is_erase() {
        let mut b = KernelBuilder::new("erase");
        let x = b.movi(1);
        let y = b.movi(2);
        let z = b.iadd(x, y); // last use of x and y
        b.st_global(z, z); // last use of z
        b.exit();
        let c = compile(b.finish().unwrap());
        assert_eq!(c.regions.len(), 1);
        let add_at = InsnRef {
            block: BlockId(0),
            idx: 2,
        };
        let note = c.ann.notes(add_at).expect("iadd has last uses");
        assert_eq!(note.last_uses.len(), 2);
        assert!(note.last_uses.iter().all(|&(_, k)| k == LastUse::Erase));
    }

    #[test]
    fn input_last_use_is_evict() {
        let mut b = KernelBuilder::new("evict");
        let next = b.new_block();
        let last = b.new_block();
        let x = b.movi(1);
        b.jmp(next);
        b.select(next);
        let y = b.iadd(x, x); // x used here AND later: not last use overall
        b.st_global(y, y);
        b.jmp(last);
        b.select(last);
        let z = b.imul(x, x);
        b.st_global(z, z);
        b.exit();
        let c = compile(b.finish().unwrap());
        // In the middle block, x is an input; its last use there is Evict.
        let mid_region = c.regions.iter().find(|r| r.block() == next).unwrap();
        assert!(mid_region.inputs().contains(x));
        let add_at = InsnRef {
            block: next,
            idx: 0,
        };
        let note = c.ann.notes(add_at).expect("last use of x in region");
        assert!(note.last_uses.contains(&(x, LastUse::Evict)));
        let _ = &c.kernel;
    }

    #[test]
    fn output_written_last_marks_evict_on_write() {
        let mut b = KernelBuilder::new("eow");
        let next = b.new_block();
        let x = b.movi(1);
        let y = b.iadd(x, x); // y is an output (used in next block); write is last access
        b.jmp(next);
        b.select(next);
        b.st_global(y, y);
        b.exit();
        let c = compile(b.finish().unwrap());
        let def_at = InsnRef {
            block: BlockId(0),
            idx: 1,
        };
        let note = c.ann.notes(def_at).expect("output def annotated");
        assert!(note.evict_on_write);
        assert!(!note.erase_on_write);
    }

    #[test]
    fn dead_store_marks_erase_on_write() {
        let mut b = KernelBuilder::new("dead");
        let x = b.movi(1);
        let _unused = b.iadd(x, x);
        b.exit();
        let c = compile(b.finish().unwrap());
        let def_at = InsnRef {
            block: BlockId(0),
            idx: 1,
        };
        let note = c.ann.notes(def_at).expect("dead store annotated");
        assert!(note.erase_on_write);
    }

    #[test]
    fn read_modify_write_not_double_marked() {
        let mut b = KernelBuilder::new("rmw");
        let x = b.movi(1);
        b.emit_to(x, regless_isa::Opcode::IAdd, vec![x, x]); // x = x + x, then dead
        b.exit();
        let c = compile(b.finish().unwrap());
        let at = InsnRef {
            block: BlockId(0),
            idx: 1,
        };
        let note = c.ann.notes(at).expect("rmw annotated");
        // The write is the last access; the read must not erase first.
        assert!(note.erase_on_write);
        assert!(note.last_uses.is_empty());
    }

    /// A register defined before a loop and only used on the taken side
    /// gets a cache invalidation at the loop exit's postdominator.
    #[test]
    fn cache_invalidate_after_control_death() {
        let mut b = KernelBuilder::new("ctl");
        let used = b.new_block();
        let done = b.new_block();
        let x = b.movi(42); // cross-region candidate
        let c = b.thread_idx();
        b.bra(c, used, done);
        b.select(used);
        let y = b.iadd(x, x);
        b.st_global(y, y);
        b.jmp(done);
        b.select(done);
        b.exit();
        let comp = compile(b.finish().unwrap());
        // x dies on the edge bb0 -> done (not-taken path); `done`
        // postdominates the def and the death, and x is dead there.
        let invals: Vec<(RegionId, Reg)> = comp
            .regions
            .iter()
            .flat_map(|r| {
                comp.ann
                    .cache_invalidates(r.id())
                    .iter()
                    .map(move |&reg| (r.id(), reg))
            })
            .collect();
        assert!(
            invals
                .iter()
                .any(|&(rid, reg)| { reg == x && comp.regions[rid.index()].block() == done }),
            "expected invalidation of {x} at {done}, got {invals:?}"
        );
    }

    #[test]
    fn no_invalidates_for_pure_interior_kernel() {
        let mut b = KernelBuilder::new("pure");
        let x = b.movi(1);
        let y = b.iadd(x, x);
        b.st_global(y, y);
        b.exit();
        let c = compile(b.finish().unwrap());
        for r in &c.regions {
            assert!(c.ann.cache_invalidates(r.id()).is_empty());
        }
    }
}

#[cfg(test)]
mod divergence_death_tests {
    use super::*;
    use crate::region::{create_regions, RegionConfig};
    use regless_isa::KernelBuilder;

    /// Regression: a value whose last (static) use is on one side of a
    /// divergent diamond must NOT be erased or invalidating-read there —
    /// the sibling path's lanes execute afterwards and still need it.
    /// (Caught by the staged-operand oracle on `kernels/divergent_abs.asm`.)
    #[test]
    fn sibling_path_uses_block_erase_and_invalidation() {
        let mut b = KernelBuilder::new("abs");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let x = b.thread_idx();
        let y = b.ld_global(x);
        let c = b.setlt(x, y);
        let r = b.fresh();
        b.bra(c, t, e);
        b.select(t);
        b.emit_to(r, regless_isa::Opcode::ISub, vec![y, x]); // reads x,y on taken side
        b.jmp(j);
        b.select(e);
        b.emit_to(r, regless_isa::Opcode::ISub, vec![x, y]); // and on the other side
        b.jmp(j);
        b.select(j);
        b.st_global(r, x);
        b.exit();
        let kernel = b.finish().unwrap();
        let dom = DomInfo::compute(&kernel);
        let liveness = Liveness::compute(&kernel, &dom);
        // x and y are live into each diamond side's sibling.
        assert!(liveness.live_on_divergent_sibling(t, x));
        assert!(liveness.live_on_divergent_sibling(t, y));
        assert!(liveness.live_on_divergent_sibling(e, y));
        // No reads in the diamond sides may be Erase, and no preloads there
        // may be invalidating.
        let regions = create_regions(&kernel, &liveness, &RegionConfig::default());
        let ann = annotate(&kernel, &dom, &liveness, &regions);
        for region in regions.iter().filter(|r| r.block() == t || r.block() == e) {
            for p in region.preloads() {
                assert!(
                    !p.invalidate,
                    "{:?} must not invalidate {} under divergence",
                    region.id(),
                    p.reg
                );
            }
            for idx in region.start()..region.end() {
                if let Some(notes) = ann.notes(InsnRef {
                    block: region.block(),
                    idx,
                }) {
                    for &(reg, kind) in &notes.last_uses {
                        assert_eq!(kind, LastUse::Evict, "{reg} erased on a divergent side");
                    }
                }
            }
        }
        // At the join, the divergence has reconverged: deaths are safe again.
        assert!(!liveness.live_on_divergent_sibling(j, x));
    }
}
