//! Dense bit-sets over architectural registers.

use regless_isa::Reg;
use std::fmt;

/// A set of registers, stored as a dense bitmap.
///
/// All dataflow analyses in this crate (liveness, region input/output
/// computation) operate on register sets; a bitmap keeps the fixed-point
/// iterations cheap and allocation-free in the inner loop.
///
/// ```
/// use regless_compiler::RegSet;
/// use regless_isa::Reg;
/// let mut s = RegSet::new(64);
/// s.insert(Reg(3));
/// s.insert(Reg(40));
/// assert!(s.contains(Reg(3)));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg(3), Reg(40)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RegSet {
    words: Vec<u64>,
    num_regs: usize,
}

impl RegSet {
    /// Empty set over a register space of `num_regs` registers.
    pub fn new(num_regs: usize) -> Self {
        RegSet {
            words: vec![0; num_regs.div_ceil(64)],
            num_regs,
        }
    }

    /// The size of the register space (not the cardinality).
    pub fn universe(&self) -> usize {
        self.num_regs
    }

    #[inline]
    fn index(&self, reg: Reg) -> (usize, u64) {
        let i = reg.index();
        assert!(
            i < self.num_regs,
            "register {reg} outside universe {}",
            self.num_regs
        );
        (i / 64, 1u64 << (i % 64))
    }

    /// Insert a register; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the register is outside the set's universe.
    pub fn insert(&mut self, reg: Reg) -> bool {
        let (w, bit) = self.index(reg);
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        newly
    }

    /// Remove a register; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if the register is outside the set's universe.
    pub fn remove(&mut self, reg: Reg) -> bool {
        let (w, bit) = self.index(reg);
        let present = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        present
    }

    /// Membership test. Registers outside the universe are never members.
    pub fn contains(&self, reg: Reg) -> bool {
        let i = reg.index();
        i < self.num_regs && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        assert_eq!(self.num_regs, other.num_regs, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &RegSet) {
        assert_eq!(self.num_regs, other.num_regs, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self ∩= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &RegSet) {
        assert_eq!(self.num_regs, other.num_regs, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Whether `self ∩ other` is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersects(&self, other: &RegSet) -> bool {
        assert_eq!(self.num_regs, other.num_regs, "universe mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterate over members in increasing register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(Reg((wi * 64 + b) as u16))
                }
            })
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    /// Collect registers into a set whose universe is just large enough.
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let regs: Vec<Reg> = iter.into_iter().collect();
        let max = regs.iter().map(|r| r.index() + 1).max().unwrap_or(0);
        let mut set = RegSet::new(max.max(1));
        for r in regs {
            set.insert(r);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new(130);
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(129)));
        assert!(s.contains(Reg(129)));
        assert!(s.remove(Reg(129)));
        assert!(!s.remove(Reg(129)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a = RegSet::new(16);
        let mut b = RegSet::new(16);
        a.insert(Reg(1));
        a.insert(Reg(2));
        b.insert(Reg(2));
        b.insert(Reg(3));
        assert!(a.intersects(&b));
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.len(), 3);
        assert!(!u.union_with(&b)); // idempotent
        let mut d = u.clone();
        d.subtract(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![Reg(3)]);
        let mut i = u.clone();
        i.intersect_with(&a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn iter_order_and_from_iter() {
        let s: RegSet = [Reg(9), Reg(0), Reg(63), Reg(64)].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![Reg(0), Reg(9), Reg(63), Reg(64)]
        );
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = RegSet::new(4);
        assert!(!s.contains(Reg(100)));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_panics() {
        RegSet::new(4).insert(Reg(4));
    }
}
