//! RegLess compiler analyses (paper §4).
//!
//! The compiler side of RegLess: it slices each kernel into **regions**
//! (Algorithm 1), classifies every register reference as region *input*,
//! *output*, or *interior*, tracks register lifetimes with GPU-aware
//! **soft definitions** (Algorithm 2), and produces the annotations the
//! hardware capacity manager follows at run time.
//!
//! The main entry point is [`compile`]:
//!
//! ```
//! use regless_compiler::{compile, RegionConfig};
//! use regless_isa::KernelBuilder;
//!
//! let mut b = KernelBuilder::new("axpy");
//! let i = b.thread_idx();
//! let x = b.ld_global(i);
//! let a = b.movi(3);
//! let y = b.imul(a, x);
//! b.st_global(y, i);
//! b.exit();
//! let kernel = b.finish()?;
//!
//! let compiled = compile(&kernel, &RegionConfig::default())?;
//! // The global load and its first use never share a region.
//! assert!(compiled.regions().len() >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod dom;
mod liveness;
mod metadata;
mod region;
mod regset;
mod renumber;

pub use annotate::{annotate, Annotations, InsnNotes, LastUse};
pub use dom::DomInfo;
pub use liveness::Liveness;
pub use metadata::MetadataStats;
pub use region::{
    bank_of, create_regions, regions_for, Preload, Region, RegionConfig, RegionId, NUM_BANKS,
};
pub use regset::RegSet;
pub use renumber::{positions_preserved, renumber_for_banks, static_src_conflicts, RenumberStats};

use regless_isa::{BlockId, InsnRef, Kernel};
use std::fmt;

/// Errors from [`compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The region configuration cannot admit even a single instruction.
    BadConfig {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadConfig { reason } => {
                write!(f, "invalid region configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A kernel together with every compiler-derived artifact the RegLess
/// hardware model consumes: regions, lifetime annotations, metadata
/// overhead, and the analyses they came from.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    kernel: Kernel,
    dom: DomInfo,
    liveness: Liveness,
    regions: Vec<Region>,
    annotations: Annotations,
    metadata: MetadataStats,
    config: RegionConfig,
    /// `region_index[block][insn_idx]` = id of the region containing that
    /// instruction.
    region_index: Vec<Vec<RegionId>>,
}

impl CompiledKernel {
    /// The source kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Dominator/postdominator information (the simulator uses the
    /// immediate postdominator as the SIMT reconvergence point).
    pub fn dom(&self) -> &DomInfo {
        &self.dom
    }

    /// Liveness facts, including soft definitions.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// All regions, ordered by (block, start); ids equal indices.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Look up one region.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// The region containing an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn region_at(&self, at: InsnRef) -> RegionId {
        self.region_index[at.block.index()][at.idx]
    }

    /// The first region of a block (the region activated when control
    /// enters the block).
    pub fn first_region_of_block(&self, block: BlockId) -> RegionId {
        self.region_index[block.index()][0]
    }

    /// Lifetime annotations.
    pub fn annotations(&self) -> &Annotations {
        &self.annotations
    }

    /// Metadata-instruction overhead model.
    pub fn metadata(&self) -> &MetadataStats {
        &self.metadata
    }

    /// The region configuration used.
    pub fn config(&self) -> &RegionConfig {
        &self.config
    }

    /// Mean static instructions per region (Table 2, first column).
    pub fn mean_region_len(&self) -> f64 {
        let total: usize = self.regions.iter().map(Region::len).sum();
        total as f64 / self.regions.len() as f64
    }

    /// Mean, and standard deviation, of per-region peak concurrent live
    /// registers, plus mean preload count (Figure 19's three series).
    pub fn region_register_stats(&self) -> RegionRegisterStats {
        let n = self.regions.len() as f64;
        let mean_preloads = self
            .regions
            .iter()
            .map(|r| r.preloads().len())
            .sum::<usize>() as f64
            / n;
        let mean_live = self
            .regions
            .iter()
            .map(Region::max_concurrent)
            .sum::<usize>() as f64
            / n;
        let var = self
            .regions
            .iter()
            .map(|r| {
                let d = r.max_concurrent() as f64 - mean_live;
                d * d
            })
            .sum::<f64>()
            / n;
        RegionRegisterStats {
            mean_preloads,
            mean_live,
            std_live: var.sqrt(),
        }
    }
}

/// Figure 19's per-benchmark summary: average preloads per region and the
/// mean/standard deviation of concurrent live registers per region.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegionRegisterStats {
    /// Average preloads (input registers) per region.
    pub mean_preloads: f64,
    /// Average peak concurrent live registers per region.
    pub mean_live: f64,
    /// Standard deviation of the peak concurrent live registers.
    pub std_live: f64,
}

/// Run the full RegLess compiler pipeline on a kernel.
///
/// # Errors
///
/// Returns [`CompileError::BadConfig`] if the configuration is too small to
/// hold even one instruction's operands (`max_regs_per_region < 5` or
/// `max_regs_per_bank < 4` or `min_region_insns == 0`).
pub fn compile(kernel: &Kernel, config: &RegionConfig) -> Result<CompiledKernel, CompileError> {
    if config.max_regs_per_region < 5 {
        return Err(CompileError::BadConfig {
            reason: "max_regs_per_region must be >= 5",
        });
    }
    if config.max_regs_per_bank < 4 {
        return Err(CompileError::BadConfig {
            reason: "max_regs_per_bank must be >= 4",
        });
    }
    if config.min_region_insns == 0 {
        return Err(CompileError::BadConfig {
            reason: "min_region_insns must be >= 1",
        });
    }
    let dom = DomInfo::compute(kernel);
    let liveness = Liveness::compute(kernel, &dom);
    let regions = create_regions(kernel, &liveness, config);
    let annotations = annotate(kernel, &dom, &liveness, &regions);
    let metadata = MetadataStats::compute(&regions, &annotations);

    let mut region_index: Vec<Vec<RegionId>> = kernel
        .blocks()
        .iter()
        .map(|b| vec![RegionId(0); b.len()])
        .collect();
    for region in &regions {
        for slot in &mut region_index[region.block().index()][region.start()..region.end()] {
            *slot = region.id();
        }
    }

    Ok(CompiledKernel {
        kernel: kernel.clone(),
        dom,
        liveness,
        regions,
        annotations,
        metadata,
        config: *config,
        region_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::KernelBuilder;

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("pipeline");
        let body = b.new_block();
        let done = b.new_block();
        let i = b.thread_idx();
        let n = b.movi(64);
        b.jmp(body);
        b.select(body);
        let v = b.ld_global(i);
        let w = b.iadd(v, i);
        b.st_global(w, i);
        let one = b.movi(1);
        b.emit_to(i, regless_isa::Opcode::IAdd, vec![i, one]);
        let c = b.setlt(i, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn compile_produces_consistent_region_index() {
        let k = kernel();
        let c = compile(&k, &RegionConfig::default()).unwrap();
        for (at, _) in k.iter_insns() {
            let rid = c.region_at(at);
            let r = c.region(rid);
            assert_eq!(r.block(), at.block);
            assert!(r.contains(at.idx));
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let k = kernel();
        for bad in [
            RegionConfig {
                max_regs_per_region: 2,
                ..RegionConfig::default()
            },
            RegionConfig {
                max_regs_per_bank: 1,
                ..RegionConfig::default()
            },
            RegionConfig {
                min_region_insns: 0,
                ..RegionConfig::default()
            },
        ] {
            assert!(compile(&k, &bad).is_err());
        }
    }

    #[test]
    fn loop_kernel_splits_load_from_use() {
        let k = kernel();
        let c = compile(&k, &RegionConfig::default()).unwrap();
        for r in c.regions() {
            let insns = &k.block(r.block()).insns()[r.start()..r.end()];
            for (i, insn) in insns.iter().enumerate() {
                if insn.is_global_load() {
                    let d = insn.dst().unwrap();
                    assert!(
                        !insns[i + 1..].iter().any(|u| u.srcs().contains(&d)),
                        "load and use share a region"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_are_finite() {
        let k = kernel();
        let c = compile(&k, &RegionConfig::default()).unwrap();
        let s = c.region_register_stats();
        assert!(s.mean_preloads.is_finite() && s.mean_preloads >= 0.0);
        assert!(s.mean_live >= 1.0);
        assert!(s.std_live.is_finite());
        assert!(c.mean_region_len() >= 1.0);
        assert!(c.metadata().overhead_fraction() < 0.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regless_isa::{Kernel, KernelBuilder, Reg};

    /// Generate a random but well-formed kernel mixing ALU runs, loads, and
    /// diamonds.
    fn arb_kernel() -> impl Strategy<Value = Kernel> {
        let seg = proptest::collection::vec(0u8..6, 1..12);
        proptest::collection::vec(seg, 1..5).prop_map(|segments| {
            let mut b = KernelBuilder::new("arb");
            let mut live: Vec<Reg> = vec![b.movi(1), b.thread_idx()];
            for (si, seg) in segments.iter().enumerate() {
                for (i, &kind) in seg.iter().enumerate() {
                    let a = live[i % live.len()];
                    let c = live[(i * 7 + 1) % live.len()];
                    let r = match kind {
                        0 => b.iadd(a, c),
                        1 => b.imul(a, c),
                        2 => b.xor(a, c),
                        3 => b.ld_global(a),
                        4 => b.sfu(a),
                        _ => b.movi(i as u32),
                    };
                    live.push(r);
                    if live.len() > 8 {
                        live.remove(0);
                    }
                }
                if si % 2 == 0 {
                    let t = b.new_block();
                    let e = b.new_block();
                    let j = b.new_block();
                    let cond = live[si % live.len()];
                    let v = live[0];
                    b.bra(cond, t, e);
                    b.select(t);
                    let x = b.iadd(v, v);
                    b.jmp(j);
                    b.select(e);
                    let y = b.imul(v, v);
                    b.jmp(j);
                    b.select(j);
                    let z = b.iadd(x, y);
                    live.push(z);
                } else {
                    let n = b.new_block();
                    b.jmp(n);
                    b.select(n);
                }
            }
            let out = *live.last().unwrap();
            b.st_global(out, out);
            b.exit();
            b.finish().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every instruction belongs to exactly one region; regions tile
        /// blocks; region demands respect the configuration.
        #[test]
        fn regions_partition_and_respect_limits(kernel in arb_kernel()) {
            let config = RegionConfig::default();
            let compiled = compile(&kernel, &config).unwrap();
            for block in kernel.blocks() {
                let mut covered = vec![0u8; block.len()];
                for r in compiled.regions().iter().filter(|r| r.block() == block.id()) {
                    for c in &mut covered[r.start()..r.end()] {
                        *c += 1;
                    }
                }
                prop_assert!(covered.iter().all(|&c| c == 1));
            }
            for r in compiled.regions() {
                prop_assert!(r.max_concurrent() <= config.max_regs_per_region);
                prop_assert!(r
                    .bank_usage()
                    .iter()
                    .all(|&u| (u as usize) <= config.max_regs_per_bank));
            }
        }

        /// Interior never overlaps inputs or outputs.
        #[test]
        fn interior_disjoint_from_io(kernel in arb_kernel()) {
            let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
            for r in compiled.regions() {
                prop_assert!(!r.interior().intersects(r.inputs()));
                prop_assert!(!r.interior().intersects(r.outputs()));
            }
        }

        /// No region contains a global load and its first use when the
        /// constraint is enabled.
        #[test]
        fn no_load_use_pairs(kernel in arb_kernel()) {
            let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
            for r in compiled.regions() {
                let insns = &kernel.block(r.block()).insns()[r.start()..r.end()];
                for (i, insn) in insns.iter().enumerate() {
                    if insn.is_global_load() {
                        let d = insn.dst().unwrap();
                        let mut used = false;
                        for u in &insns[i + 1..] {
                            if u.srcs().contains(&d) {
                                used = true;
                                break;
                            }
                            if u.dst() == Some(d) {
                                break;
                            }
                        }
                        prop_assert!(!used, "load/use pair inside region");
                    }
                }
            }
        }

        /// Preload lists equal the input sets exactly.
        #[test]
        fn preloads_match_inputs(kernel in arb_kernel()) {
            let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
            for r in compiled.regions() {
                let mut preload_regs: Vec<Reg> = r.preloads().iter().map(|p| p.reg).collect();
                preload_regs.sort();
                let inputs: Vec<Reg> = r.inputs().iter().collect();
                prop_assert_eq!(preload_regs, inputs);
            }
        }
    }
}
