//! Bank-aware register renumbering (paper §5.2: "the compiler selects
//! register numbers in a manner that reduces bank conflicts").
//!
//! A register's OSU bank is `(warp + reg) % 8`, so two registers whose
//! numbers are congruent mod 8 always collide, for every warp. Renumbering
//! is a pure renaming: it never changes semantics, only which bank each
//! architectural register lands in. The pass minimizes two costs:
//!
//! * source operands of one instruction sharing a bank (a read that
//!   serializes at issue), and
//! * concurrently-live registers sharing a bank (which inflates per-bank
//!   region reservations and reduces warp concurrency).

use crate::dom::DomInfo;
use crate::liveness::Liveness;
use crate::region::NUM_BANKS;
use regless_isa::{BasicBlock, InsnRef, Instruction, Kernel, Reg};

/// Weight of a same-instruction source-pair conflict.
const SAME_INSN_WEIGHT: u32 = 16;
/// Weight of a concurrent-liveness conflict.
const LIVE_WEIGHT: u32 = 1;

/// Statistics from one renumbering run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RenumberStats {
    /// Weighted same-bank conflicts before the pass.
    pub conflicts_before: u64,
    /// Weighted same-bank conflicts after.
    pub conflicts_after: u64,
}

/// Renumber `kernel`'s registers to spread conflicting registers across
/// OSU banks. Returns the rewritten kernel and the conflict statistics.
///
/// The result is semantically identical to the input (pure renaming); its
/// register count may grow (bank classes are strided mod 8), but its
/// *live* register demand is unchanged.
pub fn renumber_for_banks(kernel: &Kernel) -> (Kernel, RenumberStats) {
    let num_regs = kernel.num_regs() as usize;
    let dom = DomInfo::compute(kernel);
    let liveness = Liveness::compute(kernel, &dom);

    // Pairwise conflict weights.
    let mut weight = vec![0u32; num_regs * num_regs];
    let mut add = |a: Reg, b: Reg, w: u32| {
        if a != b {
            weight[a.index() * num_regs + b.index()] += w;
            weight[b.index() * num_regs + a.index()] += w;
        }
    };
    for (at, insn) in kernel.iter_insns() {
        let srcs = insn.srcs();
        for i in 0..srcs.len() {
            for j in i + 1..srcs.len() {
                add(srcs[i], srcs[j], SAME_INSN_WEIGHT);
            }
        }
        let live: Vec<Reg> = liveness.live_before(at).iter().collect();
        for i in 0..live.len() {
            for j in i + 1..live.len() {
                add(live[i], live[j], LIVE_WEIGHT);
            }
        }
    }

    // Greedy bank-class assignment, heaviest registers first.
    let mut order: Vec<usize> = (0..num_regs).collect();
    let total = |r: usize| -> u64 { (0..num_regs).map(|o| weight[r * num_regs + o] as u64).sum() };
    order.sort_by_key(|&r| std::cmp::Reverse(total(r)));
    let mut bank_of = vec![usize::MAX; num_regs];
    for &r in &order {
        let mut cost = [0u64; NUM_BANKS];
        for o in 0..num_regs {
            if bank_of[o] != usize::MAX {
                cost[bank_of[o]] += weight[r * num_regs + o] as u64;
            }
        }
        let best = (0..NUM_BANKS)
            .min_by_key(|&b| (cost[b], b))
            .expect("8 banks");
        bank_of[r] = best;
    }

    // Concrete numbers: the k-th register in bank class b gets number
    // b + 8k.
    let mut next_in_bank = [0u16; NUM_BANKS];
    let mut mapping = vec![Reg(0); num_regs];
    for r in 0..num_regs {
        let b = bank_of[r];
        mapping[r] = Reg(b as u16 + NUM_BANKS as u16 * next_in_bank[b]);
        next_in_bank[b] += 1;
    }

    let stats = RenumberStats {
        conflicts_before: conflict_cost(kernel, &weight, num_regs, |r| r),
        conflicts_after: conflict_cost(kernel, &weight, num_regs, |r| mapping[r].index()),
    };
    (rewrite(kernel, &mapping), stats)
}

/// Total weighted cost of same-bank pairs under a register→number map.
fn conflict_cost(
    kernel: &Kernel,
    weight: &[u32],
    num_regs: usize,
    map: impl Fn(usize) -> usize,
) -> u64 {
    let _ = kernel;
    let mut cost = 0u64;
    for a in 0..num_regs {
        for b in a + 1..num_regs {
            if map(a) % NUM_BANKS == map(b) % NUM_BANKS {
                cost += weight[a * num_regs + b] as u64;
            }
        }
    }
    cost
}

/// Rewrite every register reference through `mapping`.
fn rewrite(kernel: &Kernel, mapping: &[Reg]) -> Kernel {
    let remap = |r: Reg| mapping[r.index()];
    let blocks: Vec<BasicBlock> = kernel
        .blocks()
        .iter()
        .map(|block| {
            let insns = block
                .insns()
                .iter()
                .map(|insn| {
                    Instruction::new(
                        insn.op(),
                        insn.dst().map(remap),
                        insn.srcs().iter().copied().map(remap).collect(),
                    )
                })
                .collect();
            BasicBlock::new(block.id(), insns)
        })
        .collect();
    let max_reg = mapping.iter().map(|r| r.0).max().unwrap_or(0);
    Kernel::new(kernel.name(), blocks, max_reg + 1).expect("renaming preserves validity")
}

/// Count same-bank source pairs actually issued (the dynamic-cost proxy
/// used in tests and the ablation).
pub fn static_src_conflicts(kernel: &Kernel) -> u64 {
    let mut n = 0;
    for (_, insn) in kernel.iter_insns() {
        let srcs = insn.srcs();
        for i in 0..srcs.len() {
            for j in i + 1..srcs.len() {
                if srcs[i] != srcs[j] && srcs[i].index() % NUM_BANKS == srcs[j].index() % NUM_BANKS
                {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Whether an instruction reference survives renumbering (it does — only
/// register names change). Exposed for documentation tests.
pub fn positions_preserved(kernel: &Kernel, renumbered: &Kernel) -> bool {
    kernel.num_insns() == renumbered.num_insns()
        && kernel
            .iter_insns()
            .zip(renumbered.iter_insns())
            .all(|((a, ia), (b, ib)): ((InsnRef, _), (InsnRef, _))| a == b && ia.op() == ib.op())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::KernelBuilder;

    /// A kernel built to conflict: every source pair congruent mod 8.
    fn conflicted() -> Kernel {
        let mut b = KernelBuilder::new("conflicted");
        // Burn register numbers so the interesting ones are 8 apart.
        let r0 = b.movi(1); // r0
        let mut burn: Vec<Reg> = Vec::new();
        for i in 0..7 {
            burn.push(b.movi(i)); // r1..r7
        }
        let r8 = b.movi(2); // r8 — same bank as r0
        let s = b.iadd(r0, r8); // conflicting source pair
        let s2 = b.iadd(s, r0);
        b.st_global(s2, r8);
        b.exit();
        let _ = burn;
        b.finish().unwrap()
    }

    #[test]
    fn reduces_conflicts() {
        let k = conflicted();
        assert!(static_src_conflicts(&k) > 0);
        let (renum, stats) = renumber_for_banks(&k);
        assert!(stats.conflicts_after <= stats.conflicts_before);
        assert_eq!(static_src_conflicts(&renum), 0, "the pair must split banks");
    }

    #[test]
    fn renaming_preserves_structure() {
        let k = conflicted();
        let (renum, _) = renumber_for_banks(&k);
        assert!(positions_preserved(&k, &renum));
        assert_eq!(k.num_blocks(), renum.num_blocks());
    }

    #[test]
    fn mapping_is_injective() {
        let k = conflicted();
        let (renum, _) = renumber_for_banks(&k);
        // Distinct registers stay distinct: the renumbered kernel uses as
        // many distinct registers as the original.
        let distinct = |k: &Kernel| {
            let mut set = std::collections::HashSet::new();
            for (_, i) in k.iter_insns() {
                set.extend(i.srcs().iter().copied());
                set.extend(i.dst());
            }
            set.len()
        };
        assert_eq!(distinct(&k), distinct(&renum));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regless_isa::KernelBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Renumbering never increases the weighted conflict cost and
        /// always preserves instruction structure.
        #[test]
        fn never_worse(ops in proptest::collection::vec(0u8..6, 4..40)) {
            let mut b = KernelBuilder::new("arb");
            let mut live = vec![b.movi(3), b.thread_idx()];
            for (i, &k) in ops.iter().enumerate() {
                let a = live[i % live.len()];
                let c = live[(i * 5 + 1) % live.len()];
                let r = match k {
                    0 => b.iadd(a, c),
                    1 => b.imul(a, c),
                    2 => b.xor(a, c),
                    3 => b.ffma(a, c, a),
                    _ => b.movi(i as u32),
                };
                live.push(r);
                if live.len() > 6 {
                    live.remove(0);
                }
            }
            let out = *live.last().expect("nonempty");
            b.st_global(out, out);
            b.exit();
            let kernel = b.finish().expect("valid");
            let (renum, stats) = renumber_for_banks(&kernel);
            prop_assert!(stats.conflicts_after <= stats.conflicts_before);
            prop_assert!(positions_preserved(&kernel, &renum));
        }
    }
}
