//! GPU-aware liveness analysis with soft definitions.
//!
//! On a GPU, a write executed under a divergent lane mask only replaces
//! *some* lanes of a register, so it must not be treated as killing the whole
//! value. The paper calls such writes **soft definitions** (§4.4,
//! Algorithm 2). This module computes block- and instruction-level liveness
//! where live ranges do not end at soft definitions, iterating the
//! soft-definition detection and the dataflow solution to a fixed point.

use crate::dom::DomInfo;
use crate::regset::RegSet;
use regless_isa::{InsnRef, Kernel, Reg};
use std::collections::HashSet;

/// Liveness facts for one kernel.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    /// `live_before[b][i]` = registers live immediately before instruction
    /// `i` of block `b`.
    live_before: Vec<Vec<RegSet>>,
    soft_defs: HashSet<InsnRef>,
    /// `sibling_live[b]` = registers live into a *divergent sibling* path
    /// of block `b`: lanes that did not take the branch into `b` may still
    /// read them, so they must not be erased or invalidated from `b`
    /// (the read-side analogue of the soft-definition rule, §4.4).
    sibling_live: Vec<RegSet>,
    num_regs: usize,
}

impl Liveness {
    /// Compute liveness for `kernel`, using `dom` for soft-definition
    /// detection.
    pub fn compute(kernel: &Kernel, dom: &DomInfo) -> Self {
        let num_regs = kernel.num_regs() as usize;
        // Start from the conservative extreme where *no* definition kills
        // (every def treated as soft), detect soft defs against that maximal
        // liveness, and iterate downward. Both `solve` and `detect` are
        // monotone in the soft set, so this decreasing chain converges to
        // the greatest fixed point — the safe answer for partial-lane
        // writes that mutually keep each other's incoming values alive.
        let mut soft: HashSet<InsnRef> = kernel
            .iter_insns()
            .filter(|(_, insn)| insn.dst().is_some())
            .map(|(at, _)| at)
            .collect();
        let mut state = solve(kernel, &soft, num_regs);
        for _ in 0..kernel.num_insns() + 1 {
            let next_soft = detect_soft_defs(kernel, dom, &state.0);
            if next_soft == soft {
                break;
            }
            soft = next_soft;
            state = solve(kernel, &soft, num_regs);
        }
        let (live_in, live_out) = state;
        let live_before = per_insn(kernel, &soft, &live_out, num_regs);
        let sibling_live = divergent_sibling_live(kernel, dom, &live_in, num_regs);
        Liveness {
            live_in,
            live_out,
            live_before,
            soft_defs: soft,
            sibling_live,
            num_regs,
        }
    }

    /// Registers live at the entry of a block.
    pub fn live_in(&self, b: regless_isa::BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }

    /// Registers live at the exit of a block.
    pub fn live_out(&self, b: regless_isa::BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Registers live immediately before an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range for the analyzed kernel.
    pub fn live_before(&self, at: InsnRef) -> &RegSet {
        &self.live_before[at.block.index()][at.idx]
    }

    /// Registers live immediately after an instruction.
    pub fn live_after(&self, at: InsnRef) -> &RegSet {
        let block = &self.live_before[at.block.index()];
        if at.idx + 1 < block.len() {
            &block[at.idx + 1]
        } else {
            &self.live_out[at.block.index()]
        }
    }

    /// Whether the instruction at `at` is a soft definition: a write that
    /// may leave other lanes' values live.
    pub fn is_soft_def(&self, at: InsnRef) -> bool {
        self.soft_defs.contains(&at)
    }

    /// All soft definitions in the kernel.
    pub fn soft_defs(&self) -> impl Iterator<Item = InsnRef> + '_ {
        self.soft_defs.iter().copied()
    }

    /// Whether lanes on a divergent sibling path of `block` may still read
    /// `reg`. A death observed inside `block` is only safe to act on
    /// (erase / invalidating read) when this is false: under SIMT
    /// execution the warp's other lanes run the sibling path *after* this
    /// block, even though no CFG path connects them.
    pub fn live_on_divergent_sibling(&self, block: regless_isa::BlockId, reg: Reg) -> bool {
        self.sibling_live[block.index()].contains(reg)
    }

    /// The size of the register universe.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Count of live registers before each static instruction in linear
    /// order — the series plotted in the paper's Figure 5.
    pub fn live_counts(&self, kernel: &Kernel) -> Vec<(InsnRef, usize)> {
        kernel
            .iter_insns()
            .map(|(at, _)| (at, self.live_before(at).len()))
            .collect()
    }
}

/// Backward block-level dataflow with the given soft-def set.
fn solve(kernel: &Kernel, soft: &HashSet<InsnRef>, num_regs: usize) -> (Vec<RegSet>, Vec<RegSet>) {
    let n = kernel.num_blocks();
    // gen = upward-exposed uses; kill = hard defs not preceded by a use.
    let mut gen = vec![RegSet::new(num_regs); n];
    let mut kill = vec![RegSet::new(num_regs); n];
    for block in kernel.blocks() {
        let b = block.id().index();
        for (idx, insn) in block.insns().iter().enumerate() {
            for &s in insn.srcs() {
                if !kill[b].contains(s) {
                    gen[b].insert(s);
                }
            }
            if let Some(d) = insn.dst() {
                let at = InsnRef {
                    block: block.id(),
                    idx,
                };
                if !soft.contains(&at) {
                    kill[b].insert(d);
                } else {
                    // A soft def *uses* the incoming value (inactive lanes
                    // keep it), so it exposes the register upward.
                    if !kill[b].contains(d) {
                        gen[b].insert(d);
                    }
                }
            }
        }
    }
    let mut live_in = vec![RegSet::new(num_regs); n];
    let mut live_out = vec![RegSet::new(num_regs); n];
    let mut changed = true;
    while changed {
        changed = false;
        for block in kernel.blocks().iter().rev() {
            let b = block.id().index();
            let mut out = RegSet::new(num_regs);
            for succ in block.successors() {
                out.union_with(&live_in[succ.index()]);
            }
            let mut inn = out.clone();
            inn.subtract(&kill[b]);
            inn.union_with(&gen[b]);
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}

/// Per-instruction liveness inside each block, given block live-outs.
fn per_insn(
    kernel: &Kernel,
    soft: &HashSet<InsnRef>,
    live_out: &[RegSet],
    num_regs: usize,
) -> Vec<Vec<RegSet>> {
    kernel
        .blocks()
        .iter()
        .map(|block| {
            let b = block.id().index();
            let mut live = live_out[b].clone();
            let mut rows = vec![RegSet::new(num_regs); block.len()];
            for (idx, insn) in block.insns().iter().enumerate().rev() {
                let at = InsnRef {
                    block: block.id(),
                    idx,
                };
                if let Some(d) = insn.dst() {
                    if !soft.contains(&at) {
                        live.remove(d);
                    }
                }
                for &s in insn.srcs() {
                    live.insert(s);
                }
                rows[idx] = live.clone();
            }
            rows
        })
        .collect()
}

/// For each block `B`, the union of `live_in(S)` over divergent siblings
/// `S`: successors of a strict, unreconverged dominator of `B` that do not
/// dominate `B` — the same dominator scan as Algorithm 2, applied to reads.
fn divergent_sibling_live(
    kernel: &Kernel,
    dom: &DomInfo,
    live_in: &[RegSet],
    num_regs: usize,
) -> Vec<RegSet> {
    kernel
        .blocks()
        .iter()
        .map(|block| {
            let b = block.id();
            let mut set = RegSet::new(num_regs);
            let b_doms = dom.dominators(b);
            for &dom_bb in b_doms.iter().filter(|&&d| d != b) {
                let reconverged = b_doms
                    .iter()
                    .any(|&d| d != dom_bb && dom.postdominates(d, dom_bb));
                if reconverged {
                    continue;
                }
                for succ in kernel.block(dom_bb).successors() {
                    if !dom.dominates(succ, b) {
                        set.union_with(&live_in[succ.index()]);
                    }
                }
            }
            set
        })
        .collect()
}

/// Algorithm 2 from the paper, applied to every defining instruction.
///
/// A definition of `reg` at `insn` is *soft* when some strict dominator
/// `domBB` of `insn`'s block (with no reconvergence point in between) has a
/// successor on a divergent path (one not dominating `insn`'s block) into
/// which `reg` is live — i.e. another control path still needs lanes of the
/// incoming value.
fn detect_soft_defs(kernel: &Kernel, dom: &DomInfo, live_in: &[RegSet]) -> HashSet<InsnRef> {
    let mut soft = HashSet::new();
    for block in kernel.blocks() {
        for (idx, insn) in block.insns().iter().enumerate() {
            let Some(reg) = insn.dst() else { continue };
            let at = InsnRef {
                block: block.id(),
                idx,
            };
            if is_soft_def(kernel, dom, live_in, block.id(), reg) {
                soft.insert(at);
            }
        }
    }
    soft
}

fn is_soft_def(
    kernel: &Kernel,
    dom: &DomInfo,
    live_in: &[RegSet],
    insn_bb: regless_isa::BlockId,
    reg: Reg,
) -> bool {
    let insn_doms = dom.dominators(insn_bb);
    for &dom_bb in insn_doms.iter().filter(|&&d| d != insn_bb) {
        // Skip dominators with a reconvergence point before the definition:
        // a block that strictly postdominates domBB and dominates insnBB.
        let reconverged = insn_doms
            .iter()
            .any(|&d| d != dom_bb && dom.postdominates(d, dom_bb));
        if reconverged {
            continue;
        }
        for succ in kernel.block(dom_bb).successors() {
            if dom.dominates(succ, insn_bb) {
                continue;
            }
            if live_in[succ.index()].contains(reg) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::{BlockId, KernelBuilder, Opcode};

    fn analyze(kernel: &Kernel) -> Liveness {
        let dom = DomInfo::compute(kernel);
        Liveness::compute(kernel, &dom)
    }

    #[test]
    fn straight_line_liveness() {
        let mut b = KernelBuilder::new("straight");
        let x = b.movi(1); // r0
        let y = b.movi(2); // r1
        let z = b.iadd(x, y); // r2
        let _w = b.imul(z, z); // r3
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        let bb = BlockId(0);
        assert!(l.live_in(bb).is_empty());
        assert!(l.live_out(bb).is_empty());
        // Before the iadd, r0 and r1 are live.
        let before_add = l.live_before(InsnRef { block: bb, idx: 2 });
        assert!(before_add.contains(x) && before_add.contains(y));
        assert!(!before_add.contains(z));
        // After the imul nothing is live.
        assert!(l.live_after(InsnRef { block: bb, idx: 3 }).is_empty());
    }

    #[test]
    fn value_live_across_blocks() {
        let mut b = KernelBuilder::new("cross");
        let next = b.new_block();
        let x = b.movi(5);
        b.jmp(next);
        b.select(next);
        let _ = b.iadd(x, x);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        assert!(l.live_out(BlockId(0)).contains(x));
        assert!(l.live_in(next).contains(x));
    }

    /// The Figure 7 pattern: r written before a branch, rewritten on one
    /// side, and read at the join. The rewrite is a soft definition.
    #[test]
    fn soft_definition_detected() {
        let mut b = KernelBuilder::new("soft");
        let then_bb = b.new_block();
        let join = b.new_block();
        let r = b.movi(1); // dominating definition of r
        let c = b.thread_idx();
        b.bra(c, then_bb, join);
        b.select(then_bb);
        b.emit_to(r, Opcode::MovImm(2), vec![]); // candidate soft def
        b.jmp(join);
        b.select(join);
        let _use = b.iadd(r, r);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        let soft_at = InsnRef {
            block: then_bb,
            idx: 0,
        };
        assert!(
            l.is_soft_def(soft_at),
            "redefinition under divergence must be soft"
        );
        // Because the def is soft, r stays live *into* the redefining block.
        assert!(l.live_in(then_bb).contains(r));
    }

    /// If both sides of the diamond redefine the register, the value from
    /// before the branch is dead on entry to each side only if no other path
    /// uses it. With a use only at the join fed by both defs and full
    /// redefinition on both paths, each def still counts as soft per the
    /// paper's conservative rule (the other side's edge has r live).
    #[test]
    fn both_sides_redefining_are_soft() {
        let mut b = KernelBuilder::new("both");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let r = b.movi(0);
        let c = b.thread_idx();
        b.bra(c, t, e);
        b.select(t);
        b.emit_to(r, Opcode::MovImm(1), vec![]);
        b.jmp(j);
        b.select(e);
        b.emit_to(r, Opcode::MovImm(2), vec![]);
        b.jmp(j);
        b.select(j);
        let _ = b.mov(r);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        assert!(l.is_soft_def(InsnRef { block: t, idx: 0 }));
        assert!(l.is_soft_def(InsnRef { block: e, idx: 0 }));
    }

    /// A redefinition after the paths have reconverged is NOT soft.
    #[test]
    fn post_reconvergence_def_is_hard() {
        let mut b = KernelBuilder::new("hard");
        let t = b.new_block();
        let j = b.new_block();
        let r = b.movi(1);
        let c = b.thread_idx();
        b.bra(c, t, j);
        b.select(t);
        let _ = b.mov(r);
        b.jmp(j);
        b.select(j);
        b.emit_to(r, Opcode::MovImm(9), vec![]); // rewrite at the join
        let _ = b.mov(r);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        assert!(!l.is_soft_def(InsnRef { block: j, idx: 0 }));
    }

    #[test]
    fn straight_line_defs_are_hard() {
        let mut b = KernelBuilder::new("plain");
        let r = b.movi(1);
        b.emit_to(r, Opcode::MovImm(2), vec![]);
        let _ = b.mov(r);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        assert_eq!(l.soft_defs().count(), 0);
    }

    #[test]
    fn live_counts_matches_insn_count() {
        let mut b = KernelBuilder::new("counts");
        let x = b.movi(1);
        let y = b.iadd(x, x);
        let _ = b.iadd(y, x);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        let counts = l.live_counts(&k);
        assert_eq!(counts.len(), k.num_insns());
        // Before instruction 1 (iadd x,x), only x is live.
        assert_eq!(counts[1].1, 1);
        // Before instruction 2, x and y are live.
        assert_eq!(counts[2].1, 2);
    }

    /// Liveness in a loop: the induction variable is live around the back
    /// edge.
    #[test]
    fn loop_liveness() {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let done = b.new_block();
        let i = b.movi(0);
        let n = b.movi(8);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i, Opcode::IAdd, vec![i, one]);
        let c = b.setlt(i, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let k = b.finish().unwrap();
        let l = analyze(&k);
        assert!(l.live_in(body).contains(i));
        assert!(l.live_in(body).contains(n));
        assert!(l.live_out(body).contains(i));
        assert!(!l.live_in(done).contains(i));
    }
}
