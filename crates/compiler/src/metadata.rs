//! Metadata encoding overhead model (paper §5.4).
//!
//! RegLess passes its annotations to hardware as extra instructions in the
//! instruction stream (54 usable metadata bits per 64-bit instruction). The
//! encoding the paper describes:
//!
//! * every region starts with a **flag instruction** carrying the bank
//!   usage and up to 3 preloads/cache invalidations;
//! * additional metadata instructions carry further preloads and
//!   invalidations as necessary;
//! * one metadata instruction per 9 region instructions carries last-use
//!   (erase/evict) flags;
//! * small control-flow-heavy regions (≤ 4 instructions, ≤ 2 preloads or
//!   invalidations) use a **compact single-instruction encoding**.
//!
//! The counts feed the simulator's fetch/issue overhead and the energy
//! model's instruction-delivery cost.

use crate::annotate::Annotations;
use crate::region::Region;

/// Preloads/invalidations carried by the leading flag instruction.
const FLAG_INSN_SLOTS: usize = 3;
/// Preloads/invalidations carried by each overflow metadata instruction.
const EXTRA_INSN_SLOTS: usize = 6;
/// Region instructions covered by one last-use metadata instruction.
const LAST_USE_GROUP: usize = 9;
/// Compact-encoding limits.
const COMPACT_MAX_INSNS: usize = 4;
const COMPACT_MAX_SLOTS: usize = 2;

/// Metadata instruction counts for a compiled kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetadataStats {
    per_region: Vec<usize>,
    total_region_insns: usize,
}

impl MetadataStats {
    /// Compute metadata overhead for every region.
    pub fn compute(regions: &[Region], annotations: &Annotations) -> Self {
        let per_region = regions
            .iter()
            .map(|r| {
                let slots = r.preloads().len() + annotations.cache_invalidates(r.id()).len();
                metadata_insns(r.len(), slots)
            })
            .collect();
        let total_region_insns = regions.iter().map(Region::len).sum();
        MetadataStats {
            per_region,
            total_region_insns,
        }
    }

    /// Metadata instructions prepended to one region.
    pub fn for_region(&self, region: crate::region::RegionId) -> usize {
        self.per_region[region.index()]
    }

    /// Total metadata instructions across the kernel.
    pub fn total(&self) -> usize {
        self.per_region.iter().sum()
    }

    /// Fraction of the delivered instruction stream that is metadata,
    /// `metadata / (metadata + real)`.
    pub fn overhead_fraction(&self) -> f64 {
        let m = self.total() as f64;
        m / (m + self.total_region_insns as f64)
    }
}

/// Number of metadata instructions for a region of `len` instructions with
/// `slots` preload + invalidation entries.
fn metadata_insns(len: usize, slots: usize) -> usize {
    if len <= COMPACT_MAX_INSNS && slots <= COMPACT_MAX_SLOTS {
        return 1;
    }
    let mut n = 1; // flag instruction
    if slots > FLAG_INSN_SLOTS {
        n += (slots - FLAG_INSN_SLOTS).div_ceil(EXTRA_INSN_SLOTS);
    }
    n += len / LAST_USE_GROUP;
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_for_small_regions() {
        assert_eq!(metadata_insns(3, 2), 1);
        assert_eq!(metadata_insns(4, 0), 1);
    }

    #[test]
    fn flag_instruction_covers_three_slots() {
        assert_eq!(metadata_insns(8, 3), 1);
        assert_eq!(metadata_insns(8, 4), 2);
        assert_eq!(metadata_insns(8, 9), 2);
        assert_eq!(metadata_insns(8, 10), 3);
    }

    #[test]
    fn last_use_groups_every_nine() {
        assert_eq!(metadata_insns(9, 0), 2);
        assert_eq!(metadata_insns(18, 0), 3);
        assert_eq!(metadata_insns(8, 0), 1);
    }

    #[test]
    fn small_but_many_slots_not_compact() {
        assert_eq!(metadata_insns(2, 5), 2);
    }
}
