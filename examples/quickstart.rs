//! Quickstart: build a kernel, compile it into RegLess regions, and run it
//! on a simulated SM with the register file replaced by an operand staging
//! unit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::KernelBuilder;
use regless::sim::GpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SAXPY-like kernel: y[i] = a * x[i] + y0.
    let mut b = KernelBuilder::new("saxpy");
    let i = b.thread_idx();
    let four = b.movi(4);
    let addr = b.imul(i, four);
    let x = b.ld_global(addr);
    let a = b.movi(3);
    let y0 = b.movi(17);
    let y = b.imad(a, x, y0);
    b.st_global(y, addr);
    b.exit();
    let kernel = b.finish()?;

    // The paper's design point: a 512-entry staging unit per SM — 25 % of
    // the baseline register file.
    let gpu = GpuConfig::gtx980_single_sm();
    let osu = RegLessConfig::paper_default();

    // Compile with region limits matched to the staging unit's shape.
    let compiled = compile(&kernel, &osu.region_config(&gpu))?;
    println!("kernel `{}`:", kernel.name());
    for region in compiled.regions() {
        println!(
            "  {:>8}  {} insns, {} preloads, {} interior regs, peak {} live",
            region.id().to_string(),
            region.len(),
            region.preloads().len(),
            region.interior().len(),
            region.max_concurrent(),
        );
    }

    // Run it.
    let report = RegLessSim::new(gpu, osu, compiled).run()?;
    let t = report.total();
    println!(
        "\nran {} instructions in {} cycles (IPC {:.2})",
        t.insns,
        report.cycles,
        report.ipc()
    );
    println!(
        "preloads: {} from OSU, {} from compressor, {} from L1, {} from L2/DRAM",
        t.preloads_osu, t.preloads_compressor, t.preloads_l1, t.preloads_l2_dram
    );
    println!("metadata instructions decoded: {}", t.meta_insns);
    Ok(())
}
