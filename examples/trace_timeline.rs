//! Trace the RegLess region lifecycle of one warp: admission, preloads,
//! activation, instruction issue, and release.
//!
//! ```sh
//! cargo run --release --example trace_timeline [benchmark] [warp]
//! ```

use regless::compiler::compile;
use regless::core::{RegLessBackend, RegLessConfig};
use regless::sim::telemetry::Lane;
use regless::sim::{GpuConfig, Machine};
use regless::workloads::rodinia;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "kmeans".into());
    let warp: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    let kernel = rodinia::kernel(&name);
    let gpu = GpuConfig::gtx980_single_sm();
    let cfg = RegLessConfig::paper_default();
    let compiled = Arc::new(compile(&kernel, &cfg.region_config(&gpu))?);

    let mut machine = Machine::new(gpu, Arc::clone(&compiled), |sm| {
        RegLessBackend::new(sm, &gpu, &cfg, Arc::clone(&compiled))
    });
    machine.attach_telemetry(200_000);
    let report = machine.run()?;

    let telemetry = report.telemetry.as_ref().expect("telemetry attached");
    println!(
        "benchmark `{name}`, warp {warp} — region lifecycle ({} events total,\n{} dropped past buffer capacity)\n",
        telemetry.events.len(),
        telemetry.dropped
    );
    let timeline = telemetry.timeline(0, Lane::Warp(warp as u16));
    // Print the first chunk of the timeline; full kernels produce thousands
    // of lines.
    for line in timeline.lines().take(80) {
        println!("{line}");
    }
    let total = timeline.lines().count();
    if total > 80 {
        println!("... ({} more lines)", total - 80);
    }
    Ok(())
}
