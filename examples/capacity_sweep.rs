//! Sweep operand-staging-unit capacities on one benchmark, printing the
//! run-time/energy trade-off (a single-benchmark slice of the paper's
//! Figure 13 Pareto study).
//!
//! ```sh
//! cargo run --release --example capacity_sweep [benchmark]
//! ```

use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::energy::{energy, Design};
use regless::sim::{run_baseline, GpuConfig};
use regless::workloads::rodinia;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "srad_v2".into());
    let kernel = rodinia::kernel(&name);
    let gpu = GpuConfig::gtx980_single_sm();

    let compiled = compile(&kernel, &regless::compiler::RegionConfig::default())?;
    let baseline = run_baseline(gpu, Arc::new(compiled))?;
    let base_energy = energy(&baseline, Design::Baseline, &gpu).total_pj();
    println!(
        "benchmark `{name}`: baseline {} cycles; sweeping OSU capacity\n",
        baseline.cycles
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "entries", "% of RF", "run time", "GPU energy"
    );

    for entries in [128, 192, 256, 384, 512, 1024, 2048] {
        let cfg = RegLessConfig::with_capacity(entries);
        let compiled = compile(&kernel, &cfg.region_config(&gpu))?;
        let report = RegLessSim::new(gpu, cfg, compiled).run()?;
        let e = energy(
            &report,
            Design::RegLess {
                osu_entries_per_sm: entries,
            },
            &gpu,
        );
        println!(
            "{:>10} {:>11}% {:>11.3}x {:>13.3}x",
            entries,
            entries * 100 / 2048,
            report.cycles as f64 / baseline.cycles as f64,
            e.total_pj() / base_energy
        );
    }
    Ok(())
}
