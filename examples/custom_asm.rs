//! Author a kernel in the textual assembly format, compile it into RegLess
//! regions, and run it — the full pipeline from source text to cycles.
//!
//! ```sh
//! cargo run --release --example custom_asm
//! ```

use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::text::{format_kernel, parse_kernel};
use regless::sim::GpuConfig;

/// A reduction loop written by hand: each thread sums 16 strided loads.
const SOURCE: &str = "\
kernel strided_sum
bb0:
  r0 = s2r tid            ; global thread index
  r1 = movi 0x4
  r2 = imul r0, r1        ; byte address of this thread's element
  r3 = movi 0             ; accumulator
  r4 = movi 0             ; loop counter
  r5 = movi 16            ; trip count
  jmp bb1
bb1:
  r6 = ld.global [r2]
  r3 = iadd r3, r6
  r7 = movi 0x80
  r2 = iadd r2, r7        ; next stride
  r8 = movi 1
  r4 = iadd r4, r8
  r9 = setlt r4, r5
  bra r9, bb1, bb2
bb2:
  st.global r3, [r2]
  exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = parse_kernel(SOURCE)?;
    println!(
        "parsed `{}` ({} instructions); canonical form:\n",
        kernel.name(),
        kernel.num_insns()
    );
    print!("{}", format_kernel(&kernel));

    let gpu = GpuConfig::gtx980_single_sm();
    let osu = RegLessConfig::paper_default();
    let compiled = compile(&kernel, &osu.region_config(&gpu))?;
    println!("\ncompiled into {} regions:", compiled.regions().len());
    for r in compiled.regions() {
        println!(
            "  {}: {} insns in {}, {} preloads",
            r.id(),
            r.len(),
            r.block(),
            r.preloads().len()
        );
    }

    let report = RegLessSim::new(gpu, osu, compiled).run()?;
    print_report(report);
    Ok(())
}

fn print_report(report: regless::sim::RunReport) {
    let t = report.total();
    println!(
        "\nran in {} cycles; {} preloads ({} staged, {} from memory)",
        report.cycles,
        t.preloads_total(),
        t.preloads_osu + t.preloads_compressor,
        t.preloads_l1 + t.preloads_l2_dram,
    );
}
