//! Inspect what the RegLess compiler does to a kernel: regions, register
//! classification, lifetime annotations, soft definitions, and metadata
//! overhead.
//!
//! ```sh
//! cargo run --release --example region_inspector [benchmark]
//! ```

use regless::compiler::{compile, RegionConfig};
use regless::workloads::rodinia;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "particle_filter".into());
    let kernel = rodinia::kernel(&name);
    let compiled = compile(&kernel, &RegionConfig::default())?;

    println!(
        "kernel `{}`: {} blocks, {} instructions, {} registers\n",
        kernel.name(),
        kernel.num_blocks(),
        kernel.num_insns(),
        kernel.num_regs()
    );

    for region in compiled.regions() {
        let preloads: Vec<String> = region
            .preloads()
            .iter()
            .map(|p| {
                if p.invalidate {
                    format!("{} (invalidate)", p.reg)
                } else {
                    p.reg.to_string()
                }
            })
            .collect();
        println!(
            "{} [{} {}..{}] {} insns",
            region.id(),
            region.block(),
            region.start(),
            region.end(),
            region.len()
        );
        println!("    inputs:   {:?}", region.inputs());
        println!("    interior: {:?}", region.interior());
        println!("    outputs:  {:?}", region.outputs());
        println!("    preload:  [{}]", preloads.join(", "));
        println!("    bank use: {:?}", region.bank_usage());
        let invals = compiled.annotations().cache_invalidates(region.id());
        if !invals.is_empty() {
            println!("    cache invalidates: {invals:?}");
        }
    }

    let soft: Vec<String> = compiled
        .liveness()
        .soft_defs()
        .map(|d| d.to_string())
        .collect();
    if !soft.is_empty() {
        println!(
            "\nsoft definitions (divergence-partial writes): {}",
            soft.join(", ")
        );
    }
    println!(
        "\nmetadata: {} instructions ({:.1}% of the stream)",
        compiled.metadata().total(),
        100.0 * compiled.metadata().overhead_fraction()
    );
    let stats = compiled.region_register_stats();
    println!(
        "regions: {} total, {:.1} insns avg, {:.1} preloads avg, {:.1}±{:.1} live",
        compiled.regions().len(),
        compiled.mean_region_len(),
        stats.mean_preloads,
        stats.mean_live,
        stats.std_live
    );
    Ok(())
}
