//! Compare the four register-storage designs of the paper's evaluation —
//! baseline RF, RF hierarchy (RFH), RF virtualization (RFV), and RegLess —
//! on one benchmark, reporting run time and energy.
//!
//! ```sh
//! cargo run --release --example compare_designs [benchmark]
//! ```

use regless::baselines::{run_rfh, run_rfv};
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::energy::{energy, Design};
use regless::sim::{run_baseline, GpuConfig, RunReport};
use regless::workloads::rodinia;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hotspot".into());
    let kernel = rodinia::kernel(&name);
    let gpu = GpuConfig::gtx980_single_sm();

    let default_compiled = compile(&kernel, &RegionConfig::default())?;
    let baseline = run_baseline(gpu, Arc::new(default_compiled.clone()))?;
    let rfh = run_rfh(gpu, default_compiled.clone())?;
    let rfv = run_rfv(gpu, default_compiled)?;
    let rl_cfg = RegLessConfig::paper_default();
    let regless =
        RegLessSim::new(gpu, rl_cfg, compile(&kernel, &rl_cfg.region_config(&gpu))?).run()?;

    let base_energy = energy(&baseline, Design::Baseline, &gpu).total_pj();
    let row = |label: &str, report: &RunReport, design: Design| {
        let e = energy(report, design, &gpu);
        println!(
            "{label:<10} {:>9} cycles ({:>5.3}x)   RF energy {:>6.3}x   GPU energy {:>6.3}x",
            report.cycles,
            report.cycles as f64 / baseline.cycles as f64,
            e.register_structures_pj
                / energy(&baseline, Design::Baseline, &gpu).register_structures_pj,
            e.total_pj() / base_energy,
        );
    };

    println!("benchmark `{name}` on one GTX 980-class SM\n");
    row("baseline", &baseline, Design::Baseline);
    row("RFH", &rfh, Design::Rfh);
    row("RFV", &rfv, Design::Rfv);
    row(
        "RegLess",
        &regless,
        Design::RegLess {
            osu_entries_per_sm: 512,
        },
    );
    Ok(())
}
