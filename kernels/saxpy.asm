; y[i] = a * x[i] + y[i], one element per thread.
kernel saxpy
bb0:
  r0 = s2r tid
  r1 = movi 0x4
  r2 = imul r0, r1        ; element byte address
  r3 = ld.global [r2]     ; x[i]
  r4 = movi 3             ; a
  r5 = ld.global [r2]     ; y[i] (same array in this toy)
  r6 = imad r4, r3, r5    ; a*x + y
  st.global r6, [r2]
  exit
