; Per-lane absolute difference: lanes diverge on the comparison.
kernel divergent_abs
bb0:
  r0 = s2r tid
  r1 = movi 0x4
  r2 = imul r0, r1
  r3 = ld.global [r2]
  r4 = movi 0x80
  r5 = iadd r2, r4
  r6 = ld.global [r5]
  r7 = setlt r3, r6
  bra r7, bb1, bb2
bb1:
  r8 = isub r6, r3
  jmp bb3
bb2:
  r8 = isub r3, r6
  jmp bb3
bb3:
  st.global r8, [r2]
  exit
