; Blocked dot product: each thread accumulates 8 strided pairs, then the
; warp's lane 0 value stands in for the reduced result.
kernel dot_product
bb0:
  r0 = s2r tid
  r1 = movi 0x4
  r2 = imul r0, r1
  r3 = movi 0             ; acc
  r4 = movi 0             ; i
  r5 = movi 8             ; trips
  jmp bb1
bb1:
  r6 = ld.global [r2]
  r7 = movi 0x2000
  r8 = iadd r2, r7
  r9 = ld.global [r8]
  r10 = imul r6, r9
  r3 = iadd r3, r10
  r11 = movi 0x100
  r2 = iadd r2, r11
  r12 = movi 1
  r4 = iadd r4, r12
  r13 = setlt r4, r5
  bra r13, bb1, bb2
bb2:
  st.global r3, [r2]
  exit
