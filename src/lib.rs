//! # RegLess: just-in-time operand staging for GPUs
//!
//! This crate is the facade for a full reproduction of *RegLess: Just-in-Time
//! Operand Staging for GPUs* (Kloosterman et al., MICRO 2017). RegLess
//! replaces a GPU streaming multiprocessor's register file with a small
//! **operand staging unit (OSU)** that is actively managed at run time using
//! compiler annotations: kernels are sliced into **regions**, a **capacity
//! manager** admits a warp to execution only once its region's operands are
//! staged, and long-lived values spill through a pattern **compressor** into
//! the L1/global memory hierarchy.
//!
//! The reproduction is organized as a workspace; this facade re-exports each
//! subsystem under a stable module name:
//!
//! * [`isa`] — the SIMT instruction set and kernel IR,
//! * [`compiler`] — liveness (with GPU *soft definitions*), region creation,
//!   and annotation generation,
//! * [`sim`] — a cycle-level SM simulator with a baseline register file and
//!   an L1/L2/DRAM memory hierarchy,
//! * [`core`] — the RegLess hardware model (capacity manager, OSU,
//!   compressor),
//! * [`baselines`] — the RFH and RFV comparison points,
//! * [`energy`] — event-based energy, power, and area models,
//! * [`workloads`] — synthetic Rodinia-like benchmark kernels,
//! * [`telemetry`] — structured events, histograms, and Chrome-trace/CSV
//!   export for simulator runs,
//! * [`bench`](mod@bench) — the experiment harness and its memoized sweep
//!   engine,
//! * [`serve`] — a long-lived simulation service with admission control,
//!   request coalescing, and cooperative cancellation
//!   (`regless serve` / `regless submit`),
//! * [`cluster`] — a fault-tolerant coordinator/worker cluster that shards
//!   sweeps across processes (`regless cluster` / `regless worker`).
//!
//! ## Quickstart
//!
//! ```
//! use regless::workloads::rodinia;
//! use regless::compiler::compile;
//! use regless::core::{RegLessConfig, RegLessSim};
//! use regless::sim::GpuConfig;
//!
//! // Build a benchmark kernel, compile it into regions sized for the
//! // staging unit, and run it on a RegLess-enabled SM.
//! let kernel = rodinia::pathfinder();
//! let gpu = GpuConfig::test_small();
//! let osu = RegLessConfig::paper_default();
//! let compiled = compile(&kernel, &osu.region_config(&gpu))?;
//! let report = RegLessSim::new(gpu, osu, compiled).run()?;
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use regless_baselines as baselines;
pub use regless_bench as bench;
pub use regless_cluster as cluster;
pub use regless_compiler as compiler;
pub use regless_core as core;
pub use regless_energy as energy;
pub use regless_isa as isa;
pub use regless_serve as serve;
pub use regless_sim as sim;
pub use regless_telemetry as telemetry;
pub use regless_workloads as workloads;
