//! `regless` — command-line driver for the RegLess reproduction.
//!
//! ```text
//! regless list                         all built-in benchmark kernels
//! regless designs [--format table|json]  the design registry: every storage
//!                                     design id with citation, stability tier,
//!                                     and tunable-parameter defaults
//! regless run <kernel> [options]      simulate a kernel
//!     --design <id>                       storage design (default regless;
//!                                         ids come from `regless designs`)
//!     --capacity <entries>                OSU entries/SM (default 512)
//!     --no-compressor                     disable the compressor
//!     --self-profile                      time the simulator's own phases (host
//!                                         wall clock; results stay byte-identical)
//!     --self-profile-out <path>           also write the phases as a Chrome trace
//! regless inspect <kernel>            regions, annotations, metadata
//! regless asm <kernel>                dump the kernel as assembly text
//! regless sweep <kernel> [--progress] OSU capacity sweep (--progress streams
//!                                     done/total, units/s, Mcycles/s, ETA)
//! regless sweep --stats [--format text|json] | --gc   cache report / pruning
//! regless trace <kernel> [options]    telemetry export for one run
//!     --design baseline|regless           backend to trace (default regless)
//!     --capacity <entries>                OSU entries/SM (default 512)
//!     --format chrome|csv                 Chrome trace JSON or CSV summary
//!     --out <path>                        write there instead of stdout
//! regless profile <kernel> [options]  CPI-stack profile for one run
//!     --design <id>                       storage design (default regless)
//!     --capacity <entries>                OSU entries/SM (default 512)
//!     --format table|json|csv             rendering (default table)
//!     --out <path>                        write there instead of stdout
//! regless report <kernel> [options]   unified dashboard for one run
//!     --design <id>                       storage design (default regless)
//!     --capacity <entries>                OSU entries/SM (default 512)
//!     --format html|json                  rendering (default html)
//!     --out <path>                        write there instead of stdout
//!     --trend                             append this run to the history file
//!                                         and render the trajectory table
//!     --history <path>                    history file (default results/history.jsonl)
//! regless diff <a.json> <b.json>      compare two saved profiles
//!     --fail-above <pct>                  exit non-zero past this regression
//! regless trends [options]            perf-trend observatory over BENCH_*.json
//!     --results <dir>                     artifact directory (default results)
//!     --history <path>                    trend history (default results/trends.jsonl)
//!     --no-ingest                         gate/render only; append nothing
//!     --window <n>                        rolling-median window (default 8)
//!     --fail-above <pct>                  exit non-zero when the newest value is
//!                                         this % worse than its rolling median
//!     --html <path>                       write the trend dashboard there
//! regless serve [options]             long-lived simulation server (JSONL/TCP)
//!     --addr <host:port>                  listen address (default 127.0.0.1:7117; port 0 = ephemeral)
//!     --workers <n>                       worker threads (default cores − 1)
//!     --queue <n>                         admission queue capacity (default 64)
//!     --drain-timeout <secs>              graceful-drain budget (default 30)
//! regless submit <kernel> [options]   submit one request to a running server
//!     --addr <host:port>                  server address (default 127.0.0.1:7117)
//!     --kind run|profile|report           what to ask for (default run)
//!     --design baseline|regless           storage design (default regless)
//!     --capacity <entries>                OSU entries/SM (default 512)
//!     --no-compressor                     disable the compressor
//!     --timeout-ms <ms>                   per-request deadline
//!     --trace                             stamp a trace id and collect spans
//!     --trace-id <hex>                    use this trace id instead of a fresh one
//!     --trace-out <path>                  write the Chrome trace there
//!                                         (default results/serve-trace.json)
//! regless submit --stats|--shutdown   server statistics / graceful shutdown
//! regless obs [<addr>] [options]      server metrics / structured log
//!     --format json|prom|table            rendering (default table)
//!     --watch <secs>                      re-poll and re-print every <secs>
//!     --tail                              follow the structured event log
//! regless cluster [options]           coordinator: shard a sweep across workers
//!     --addr <host:port>                  listen address (default 127.0.0.1:7118; port 0 = ephemeral)
//!     --workers <n>                       workers to spawn with --spawn (default 2)
//!     --spawn                             self-spawn local worker processes
//!     --benches <csv>                     benchmark ids (default all rodinia)
//!     --designs <csv>                     designs to sweep (default baseline,regless;
//!                                         any servable registry id works)
//!     --capacity <entries>                OSU entries/SM for regless designs (default 512)
//!     --liveness-ms <ms>                  worker liveness timeout (default 60000)
//!     --timeout-secs <s>                  overall sweep deadline (default 3600)
//!     --digest <path>                     write the merged-result digest there
//!     --local                             run the same sweep single-process instead
//!     --json                              print the run summary as JSON on stdout
//!     --trace-out <path>                  write claim→result spans as a Chrome trace
//!     --progress                          stream done/total, units/s, cycles/s, ETA
//!                                         to stderr while waiting
//! regless worker [options]            worker: claim and simulate cluster units
//!     --connect <host:port>               coordinator address (default 127.0.0.1:7118)
//!     --name <s>                          worker name on the ring (default w<pid>)
//!     --fail-after <n>                    chaos hook: die with a unit in flight after n units
//! ```
//!
//! `<kernel>` is a built-in benchmark name (see `regless list`) or a path
//! to a `.asm` file in the textual format of [`regless::isa::text`].
//! Chrome traces load in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `REGLESS_SIM=stepped` in the environment forces the cycle-by-cycle
//! reference run loop instead of the event-driven fast path. Both loops
//! produce byte-identical reports (CI diffs them); the variable exists
//! for differential debugging and for measuring fast-path speedup.
//!
//! `REGLESS_SELFPROF=1` turns on the simulator's host-side self profiler
//! everywhere (run loop phases, sweep-engine pipeline): tables land on
//! stderr and the phase counters join the serve/cluster metrics surface.
//! Simulated results are byte-identical with it on or off (CI asserts
//! this property); with it off the instrumentation never reads a clock.

use regless::baselines::{run_compress_rf, run_regdem, run_rfh, run_rfv};
use regless::bench::profile::{diff as profile_diff, ProfileReport};
use regless::bench::registry;
use regless::bench::report::collect as report_collect;
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::energy::{energy, Design};
use regless::isa::text::{format_kernel, parse_kernel};
use regless::isa::Kernel;
use regless::sim::{run_baseline, BaselineRf, GpuConfig, Machine, RunReport};
use regless::telemetry::{
    chrome_trace_string, parse_history, summary_csv, trend_table, RunSummary,
};
use regless::workloads::rodinia;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("designs") => cmd_designs(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("trends") => cmd_trends(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `regless help`").into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn print_usage() {
    println!(
        "regless — just-in-time operand staging for GPUs (MICRO 2017 reproduction)\n\n\
         commands:\n\
         \u{20}  list                      built-in benchmark kernels\n\
         \u{20}  designs [--format table|json]  the design registry (ids, citations, tiers,\n\
         \u{20}                            tunable defaults) — every `--design` value\n\
         \u{20}  run <kernel> [options]    simulate (options: --design <id from `regless designs`>,\n\
         \u{20}                            --capacity <entries>, --no-compressor,\n\
         \u{20}                            --self-profile, --self-profile-out <path>)\n\
         \u{20}  inspect <kernel>          regions, annotations, metadata\n\
         \u{20}  asm <kernel>              dump assembly text\n\
         \u{20}  sweep <kernel> [--progress]  OSU capacity sweep (--progress streams ETA)\n\
         \u{20}  sweep --stats | --gc      sweep-engine cache report / orphan pruning\n\
         \u{20}  sweep --gc --dry-run      list orphaned cache directories without deleting\n\
         \u{20}  trace <kernel> [options]  telemetry export (options: --design baseline|regless,\n\
         \u{20}                            --capacity <entries>, --format chrome|csv, --out <path>)\n\
         \u{20}  profile <kernel> [opts]   CPI-stack profile (options: --design <id>,\n\
         \u{20}                            --capacity <entries>, --format table|json|csv, --out <path>)\n\
         \u{20}  report <kernel> [opts]    unified dashboard (options: --design <id>,\n\
         \u{20}                            --capacity <entries>, --format html|json, --out <path>,\n\
         \u{20}                            --trend, --history <path>)\n\
         \u{20}  diff <a.json> <b.json>    compare two saved profiles (--fail-above <pct> gates)\n\
         \u{20}  trends [options]          perf-trend observatory (options: --results <dir>,\n\
         \u{20}                            --history <path>, --no-ingest, --window <n>,\n\
         \u{20}                            --fail-above <pct>, --html <path>)\n\
         \u{20}  serve [options]           simulation server (options: --addr <host:port>,\n\
         \u{20}                            --workers <n>, --queue <n>, --drain-timeout <secs>)\n\
         \u{20}  submit <kernel> [opts]    send one request (options: --addr <host:port>,\n\
         \u{20}                            --kind run|profile|report, --design baseline|regless,\n\
         \u{20}                            --capacity <entries>, --no-compressor, --timeout-ms <ms>,\n\
         \u{20}                            --trace, --trace-id <hex>, --trace-out <path>)\n\
         \u{20}  submit --stats|--shutdown server statistics / graceful shutdown\n\
         \u{20}  obs [<addr>] [options]    server metrics / log (options: --format json|prom|table,\n\
         \u{20}                            --watch <secs>, --tail)\n\
         \u{20}  cluster [options]         shard a sweep across workers (options: --addr <host:port>,\n\
         \u{20}                            --workers <n>, --spawn, --benches <csv>, --designs <csv>,\n\
         \u{20}                            --capacity <entries>, --liveness-ms <ms>, --timeout-secs <s>,\n\
         \u{20}                            --digest <path>, --local, --json, --trace-out <path>,\n\
         \u{20}                            --progress)\n\
         \u{20}  worker [options]          cluster worker (options: --connect <host:port>, --name <s>,\n\
         \u{20}                            --fail-after <n>)\n\n\
         <kernel> is a benchmark name or a path to a .asm file\n\
         REGLESS_SIM=stepped forces the cycle-by-cycle reference run loop\n\
         (byte-identical reports; for differential debugging and speed bench)\n\
         REGLESS_SELFPROF=1 times the simulator's own phases everywhere\n\
         (host wall clock only; simulated results stay byte-identical)"
    );
}

/// Write `contents` to `path`, creating missing parent directories first
/// so `--out results/new-dir/file` works on a fresh checkout.
fn write_output(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn load_kernel(spec: &str) -> Result<Kernel, Box<dyn std::error::Error>> {
    if rodinia::NAMES.contains(&spec) {
        return Ok(rodinia::kernel(spec));
    }
    if std::path::Path::new(spec).exists() {
        let text = std::fs::read_to_string(spec)?;
        return Ok(parse_kernel(&text)?);
    }
    Err(format!("{spec:?} is neither a benchmark (see `regless list`) nor a file").into())
}

fn cmd_list() -> CmdResult {
    println!("built-in benchmarks (synthetic Rodinia stand-ins):");
    for name in rodinia::NAMES {
        println!("  {name}");
    }
    Ok(())
}

/// List the design registry (`regless designs`): every storage design the
/// tool can simulate, with citation, stability tier, and tunable-parameter
/// defaults.
fn cmd_designs(args: &[String]) -> CmdResult {
    let mut format = "table".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    match format.as_str() {
        "table" => print!("{}", registry::render_table()),
        "json" => println!("{}", registry::render_json().to_string_pretty()),
        other => return Err(format!("unknown format {other:?} (table|json)").into()),
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("run: missing kernel")?;
    let kernel = load_kernel(spec)?;
    let mut design = "regless".to_string();
    let mut capacity = 512usize;
    let mut compressor = true;
    let mut self_profile = false;
    let mut self_profile_out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--design" => design = it.next().ok_or("--design needs a value")?.clone(),
            "--capacity" => {
                capacity = it.next().ok_or("--capacity needs a value")?.parse()?;
            }
            "--no-compressor" => compressor = false,
            "--self-profile" => self_profile = true,
            "--self-profile-out" => {
                self_profile = true;
                self_profile_out =
                    Some(it.next().ok_or("--self-profile-out needs a value")?.clone());
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    if self_profile && !matches!(design.as_str(), "baseline" | "regless") {
        return Err("--self-profile supports the baseline and regless designs".into());
    }
    // Force-enabled regardless of REGLESS_SELFPROF: the flag is the
    // explicit opt-in. Host wall clock only — the report is byte-identical
    // with or without it.
    let prof = self_profile.then(|| Arc::new(regless::telemetry::SelfProfiler::new(true)));

    let gpu = GpuConfig::gtx980_single_sm();
    let (report, edesign): (RunReport, Design) = match design.as_str() {
        "baseline" => {
            let compiled = compile(&kernel, &RegionConfig::default())?;
            let report = if let Some(p) = &prof {
                let mut machine = Machine::new(gpu, Arc::new(compiled), |_| BaselineRf::new());
                machine.attach_self_profiler(Arc::clone(p));
                machine.run()?
            } else {
                run_baseline(gpu, Arc::new(compiled))?
            };
            (report, Design::Baseline)
        }
        "rfh" => {
            let compiled = compile(&kernel, &RegionConfig::default())?;
            (run_rfh(gpu, compiled)?, Design::Rfh)
        }
        "rfv" => {
            let compiled = compile(&kernel, &RegionConfig::default())?;
            (run_rfv(gpu, compiled)?, Design::Rfv)
        }
        "regdem" => {
            let compiled = compile(&kernel, &RegionConfig::default())?;
            (run_regdem(gpu, compiled)?, Design::RegDem)
        }
        "compress-rf" => {
            let compiled = compile(&kernel, &RegionConfig::default())?;
            (run_compress_rf(gpu, compiled)?, Design::CompressRf)
        }
        "regless" | "regless-nc" => {
            let cfg = RegLessConfig {
                compressor_enabled: compressor && design != "regless-nc",
                ..RegLessConfig::with_capacity(capacity)
            };
            let compiled = compile(&kernel, &cfg.region_config(&gpu))?;
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            if let Some(p) = &prof {
                sim.attach_self_profiler(Arc::clone(p));
            }
            (
                sim.run()?,
                Design::RegLess {
                    osu_entries_per_sm: capacity,
                },
            )
        }
        other => return Err(registry::unknown_design_message(other).into()),
    };
    if let Some(p) = &prof {
        // The breakdown goes to stderr so stdout stays the run summary.
        eprint!("{}", p.render_table("sim"));
        if let Some(path) = &self_profile_out {
            use regless::telemetry::obs::gen_trace_id;
            let spans = p.to_spans(gen_trace_id(), "sim");
            write_output(
                path,
                &regless::telemetry::chrome_spans(&spans).to_string_compact(),
            )?;
            eprintln!("wrote {} self-profile phase spans to {path}", spans.len());
        }
    }

    let t = report.total();
    let e = energy(&report, edesign, &gpu);
    println!("kernel `{}` under {design}:", kernel.name());
    println!("  cycles            {}", report.cycles);
    println!("  instructions      {} (IPC {:.2})", t.insns, report.ipc());
    if t.preloads_total() > 0 {
        println!(
            "  preloads          {} ({} OSU, {} compressor, {} L1, {} L2/DRAM)",
            t.preloads_total(),
            t.preloads_osu,
            t.preloads_compressor,
            t.preloads_l1,
            t.preloads_l2_dram
        );
        println!("  regions activated {}", t.regions_activated);
        println!("  metadata insns    {}", t.meta_insns);
        println!("  staging oracle    {} mismatches", t.staging_mismatches);
    }
    println!(
        "  energy            {:.1} nJ total ({:.1} nJ register structures)",
        e.total_pj() / 1e3,
        e.register_structures_pj / 1e3
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("inspect: missing kernel")?;
    let kernel = load_kernel(spec)?;
    let compiled = compile(&kernel, &RegionConfig::default())?;
    println!(
        "kernel `{}`: {} blocks, {} insns, {} regs, {} regions",
        kernel.name(),
        kernel.num_blocks(),
        kernel.num_insns(),
        kernel.num_regs(),
        compiled.regions().len()
    );
    for r in compiled.regions() {
        println!(
            "  {} [{} {}..{}]: {} insns, in {:?}, out {:?}, {} interior",
            r.id(),
            r.block(),
            r.start(),
            r.end(),
            r.len(),
            r.inputs(),
            r.outputs(),
            r.interior().len()
        );
    }
    let s = compiled.region_register_stats();
    println!(
        "region stats: {:.1} insns avg, {:.1} preloads avg, {:.1}±{:.1} live; metadata {:.1}%",
        compiled.mean_region_len(),
        s.mean_preloads,
        s.mean_live,
        s.std_live,
        100.0 * compiled.metadata().overhead_fraction()
    );
    Ok(())
}

fn cmd_asm(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("asm: missing kernel")?;
    let kernel = load_kernel(spec)?;
    print!("{}", format_kernel(&kernel));
    Ok(())
}

/// Record a full simulation's telemetry and export it.
fn cmd_trace(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("trace: missing kernel")?;
    let kernel = load_kernel(spec)?;
    let mut design = "regless".to_string();
    let mut capacity = 512usize;
    let mut format = "chrome".to_string();
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--design" => design = it.next().ok_or("--design needs a value")?.clone(),
            "--capacity" => {
                capacity = it.next().ok_or("--capacity needs a value")?.parse()?;
            }
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }

    /// Events buffered per SM before older spans are dropped.
    const EVENTS_PER_SM: usize = 1_000_000;
    let gpu = GpuConfig::gtx980_single_sm();
    let report = match design.as_str() {
        "baseline" => {
            let compiled = Arc::new(compile(&kernel, &RegionConfig::default())?);
            let mut machine = Machine::new(gpu, compiled, |_| BaselineRf::new());
            machine.attach_telemetry(EVENTS_PER_SM);
            machine.run()?
        }
        "regless" => {
            let cfg = RegLessConfig::with_capacity(capacity);
            let compiled = compile(&kernel, &cfg.region_config(&gpu))?;
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.attach_telemetry(EVENTS_PER_SM);
            sim.run()?
        }
        other => return Err(format!("trace supports baseline|regless, not {other:?}").into()),
    };
    let telemetry = report
        .telemetry
        .as_ref()
        .expect("attach_telemetry was called");
    let rendered = match format.as_str() {
        "chrome" => chrome_trace_string(telemetry),
        "csv" => summary_csv(telemetry),
        other => return Err(format!("unknown format {other:?} (chrome|csv)").into()),
    };
    match out {
        Some(path) => {
            write_output(&path, &rendered)?;
            eprintln!(
                "wrote {} bytes of {format} telemetry for `{}` to {path} \
                 ({} events, {} dropped)",
                rendered.len(),
                kernel.name(),
                telemetry.events.len(),
                telemetry.dropped
            );
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// Simulate `kernel` under a named design and return the report (shared
/// by `profile`; `run` keeps its own copy because it also needs the
/// energy-model design).
fn run_for_design(
    kernel: &Kernel,
    design: &str,
    capacity: usize,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let gpu = GpuConfig::gtx980_single_sm();
    match design {
        "baseline" => {
            let compiled = compile(kernel, &RegionConfig::default())?;
            Ok(run_baseline(gpu, Arc::new(compiled))?)
        }
        "rfh" => {
            let compiled = compile(kernel, &RegionConfig::default())?;
            Ok(run_rfh(gpu, compiled)?)
        }
        "rfv" => {
            let compiled = compile(kernel, &RegionConfig::default())?;
            Ok(run_rfv(gpu, compiled)?)
        }
        "regdem" => {
            let compiled = compile(kernel, &RegionConfig::default())?;
            Ok(run_regdem(gpu, compiled)?)
        }
        "compress-rf" => {
            let compiled = compile(kernel, &RegionConfig::default())?;
            Ok(run_compress_rf(gpu, compiled)?)
        }
        "regless" | "regless-nc" => {
            let cfg = RegLessConfig {
                compressor_enabled: design != "regless-nc",
                ..RegLessConfig::with_capacity(capacity)
            };
            let compiled = compile(kernel, &cfg.region_config(&gpu))?;
            Ok(RegLessSim::new(gpu, cfg, compiled).run()?)
        }
        other => Err(registry::unknown_design_message(other).into()),
    }
}

/// CPI-stack profile for one run (`regless profile`).
fn cmd_profile(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("profile: missing kernel")?;
    let kernel = load_kernel(spec)?;
    let mut design = "regless".to_string();
    let mut capacity = 512usize;
    let mut format = "table".to_string();
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--design" => design = it.next().ok_or("--design needs a value")?.clone(),
            "--capacity" => {
                capacity = it.next().ok_or("--capacity needs a value")?.parse()?;
            }
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let report = run_for_design(&kernel, &design, capacity)?;
    let osu_capacity = if design.starts_with("regless") {
        capacity
    } else {
        0
    };
    let profile = ProfileReport::collect(&report, kernel.name(), &design, osu_capacity);
    let rendered = match format.as_str() {
        "table" => profile.render_table(),
        "json" => profile.to_json_string(),
        "csv" => profile.render_csv(),
        other => return Err(format!("unknown format {other:?} (table|json|csv)").into()),
    };
    match out {
        Some(path) => {
            write_output(&path, &rendered)?;
            eprintln!(
                "wrote {format} profile for `{}` under {design} to {path}",
                kernel.name()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Unified dashboard for one run (`regless report`).
fn cmd_report(args: &[String]) -> CmdResult {
    let spec = args.first().ok_or("report: missing kernel")?;
    let kernel = load_kernel(spec)?;
    let mut design = "regless".to_string();
    let mut capacity = 512usize;
    let mut format = "html".to_string();
    let mut out: Option<String> = None;
    let mut trend = false;
    let mut history_path = "results/history.jsonl".to_string();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--design" => design = it.next().ok_or("--design needs a value")?.clone(),
            "--capacity" => {
                capacity = it.next().ok_or("--capacity needs a value")?.parse()?;
            }
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--trend" => trend = true,
            "--history" => history_path = it.next().ok_or("--history needs a value")?.clone(),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }

    // Record telemetry where the backend supports it (baseline, regless)
    // so the dashboard's counter and histogram sections are populated;
    // rfh/rfv run unrecorded and those sections stay empty.
    const EVENTS_PER_SM: usize = 1_000_000;
    let gpu = GpuConfig::gtx980_single_sm();
    let run = match design.as_str() {
        "baseline" => {
            let compiled = Arc::new(compile(&kernel, &RegionConfig::default())?);
            let mut machine = Machine::new(gpu, compiled, |_| BaselineRf::new());
            machine.attach_telemetry(EVENTS_PER_SM);
            machine.run()?
        }
        "regless" => {
            let cfg = RegLessConfig::with_capacity(capacity);
            let compiled = compile(&kernel, &cfg.region_config(&gpu))?;
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.attach_telemetry(EVENTS_PER_SM);
            sim.run()?
        }
        _ => run_for_design(&kernel, &design, capacity)?,
    };
    let osu_capacity = if design.starts_with("regless") {
        capacity
    } else {
        0
    };
    let report = report_collect(&run, kernel.name(), &design, osu_capacity);

    // --trend: append this run's summary row, then render the whole
    // history (including the new row) as the trajectory section.
    let mut history: Vec<RunSummary> = Vec::new();
    if trend {
        let mut body = std::fs::read_to_string(&history_path).unwrap_or_default();
        body.push_str(&report.summary().to_jsonl_line());
        body.push('\n');
        write_output(&history_path, &body)?;
        history = parse_history(&body);
        eprintln!("appended run to {history_path} ({} rows)", history.len());
    }

    let rendered = match format.as_str() {
        "html" => report.render_html(&history),
        "json" => report.to_json_string(),
        other => return Err(format!("unknown format {other:?} (html|json)").into()),
    };
    match &out {
        Some(path) => {
            write_output(path, &rendered)?;
            eprintln!(
                "wrote {format} report for `{}` under {design} to {path}",
                kernel.name()
            );
        }
        None => print!("{rendered}"),
    }
    if trend && out.is_some() {
        print!("{}", trend_table(&history));
    }
    Ok(())
}

/// Compare two saved profiles (`regless diff`).
fn cmd_diff(args: &[String]) -> CmdResult {
    let a_path = args.first().ok_or("diff: missing first profile")?;
    let b_path = args.get(1).ok_or("diff: missing second profile")?;
    let mut fail_above: Option<f64> = None;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fail-above" => {
                fail_above = Some(it.next().ok_or("--fail-above needs a value")?.parse()?);
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let a: ProfileReport = ProfileReport::from_json_str(&std::fs::read_to_string(a_path)?)?;
    let b: ProfileReport = ProfileReport::from_json_str(&std::fs::read_to_string(b_path)?)?;
    let d = profile_diff(&a, &b);
    print!("{}", d.render(a_path, b_path, fail_above));
    if let Some(t) = fail_above {
        if d.exceeds(t) {
            std::process::exit(1);
        }
    }
    Ok(())
}

/// Start the long-lived simulation server (`regless serve`).
fn cmd_serve(args: &[String]) -> CmdResult {
    let mut config = regless::serve::ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--workers" => {
                config.workers = it.next().ok_or("--workers needs a value")?.parse()?;
            }
            "--queue" => {
                config.queue_capacity = it.next().ok_or("--queue needs a value")?.parse()?;
            }
            "--drain-timeout" => {
                let secs: u64 = it.next().ok_or("--drain-timeout needs a value")?.parse()?;
                config.drain_timeout = std::time::Duration::from_secs(secs);
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let drain_timeout = config.drain_timeout;
    let engine = Arc::new(regless::bench::sweep::SweepEngine::from_env());
    let handle = regless::serve::Server::start(config, engine)?;
    // Port 0 resolves at bind time; print the actual address so scripts
    // (and the CI smoke test) can discover it.
    println!("regless-serve listening on {}", handle.addr());
    handle.wait_for_shutdown();
    eprintln!("shutdown requested; draining in-flight jobs");
    match handle.drain() {
        Ok(()) => {
            eprintln!("drained cleanly");
            Ok(())
        }
        Err(live) => Err(format!(
            "drain timed out after {drain_timeout:?} with {live} worker(s) still busy"
        )
        .into()),
    }
}

/// Submit one request to a running server (`regless submit`).
fn cmd_submit(args: &[String]) -> CmdResult {
    use regless::serve::{Client, Request, RequestKind};
    use regless::telemetry::obs::{epoch_us, format_trace_id, gen_trace_id, parse_trace_id, Span};
    let mut addr = regless::serve::DEFAULT_ADDR.to_string();
    let mut req = Request::control(1, RequestKind::Run);
    let mut trace = false;
    let mut trace_id: Option<u64> = None;
    let mut trace_out = "results/serve-trace.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--stats" => req.kind = RequestKind::Stats,
            "--shutdown" => req.kind = RequestKind::Shutdown,
            "--kind" => {
                let k = it.next().ok_or("--kind needs a value")?;
                req.kind = RequestKind::parse(k).ok_or_else(|| format!("unknown kind {k:?}"))?;
            }
            "--design" => req.design = it.next().ok_or("--design needs a value")?.clone(),
            "--capacity" => {
                req.capacity = it.next().ok_or("--capacity needs a value")?.parse()?;
            }
            "--no-compressor" => req.compressor = false,
            "--timeout-ms" => {
                req.timeout_ms = Some(it.next().ok_or("--timeout-ms needs a value")?.parse()?);
            }
            "--trace" => trace = true,
            "--trace-id" => {
                let raw = it.next().ok_or("--trace-id needs a value")?;
                trace = true;
                trace_id = Some(
                    parse_trace_id(raw)
                        .ok_or_else(|| format!("--trace-id {raw:?} is not 1-16 hex digits"))?,
                );
            }
            "--trace-out" => {
                trace = true;
                trace_out = it.next().ok_or("--trace-out needs a value")?.clone();
            }
            other if !other.starts_with("--") && req.kernel.is_none() => {
                req.kernel = Some(other.to_string());
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    if req.kind.is_simulation() && req.kernel.is_none() {
        return Err("submit: missing kernel (or use --stats / --shutdown)".into());
    }
    let trace_id = trace_id.unwrap_or_else(gen_trace_id);
    if trace {
        req.trace_id = Some(format_trace_id(trace_id));
    }
    let mut client = Client::connect(&addr)?;
    let t0 = epoch_us();
    let resp = client.request(&req)?;
    let rpc_dur = epoch_us().saturating_sub(t0);
    println!("{}", resp.to_json().to_string_pretty());
    if trace {
        // The client-side rpc span wraps everything the server reported;
        // merging them into one Chrome trace shows the request's whole
        // life across both processes on the trace id's timeline.
        let mut spans = vec![Span::new(trace_id, "rpc", "client", t0, rpc_dur)
            .arg("addr", addr)
            .arg("kind", req.kind.as_str())];
        if let Some(regless_json::Json::Arr(wire)) = resp.payload_field("trace") {
            spans.extend(wire.iter().filter_map(Span::from_json));
        }
        write_output(
            &trace_out,
            &regless::telemetry::chrome_spans(&spans).to_string_compact(),
        )?;
        eprintln!(
            "wrote {} spans for trace {} to {trace_out}",
            spans.len(),
            format_trace_id(trace_id)
        );
    }
    if !resp.ok {
        std::process::exit(1);
    }
    Ok(())
}

/// Poll a server's metrics and structured log (`regless obs`).
fn cmd_obs(args: &[String]) -> CmdResult {
    use regless::serve::{Client, Request, RequestKind};
    use regless::telemetry::obs::{LogEvent, MetricsSnapshot};
    let mut addr = regless::serve::DEFAULT_ADDR.to_string();
    let mut format = "table".to_string();
    let mut watch: Option<u64> = None;
    let mut tail = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--watch" => watch = Some(it.next().ok_or("--watch needs a value")?.parse()?),
            "--tail" => tail = true,
            other if !other.starts_with("--") => addr = other.to_string(),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    if !matches!(format.as_str(), "json" | "prom" | "table") {
        return Err(format!("unknown format {format:?} (json|prom|table)").into());
    }
    // --tail follows continuously; --watch re-prints on its cadence; a
    // plain `regless obs` prints once.
    let interval = std::time::Duration::from_secs(watch.unwrap_or(1).max(1));
    let mut client = Client::connect(&addr)?;
    let mut id = 1u64;
    let mut last_seq: Option<u64> = None;
    let mut polls = 0u64;
    loop {
        let resp = match client.request(&Request::control(id, RequestKind::Metrics)) {
            Ok(resp) => resp,
            // Mid-watch hangup after at least one good poll is the normal
            // end of a drain, not a failure: say so and exit clean. A
            // first-poll error still reports (nothing was ever watched).
            Err(e) if polls > 0 && (tail || watch.is_some()) => {
                let _ = e;
                println!("server drained; stopping after {polls} poll(s)");
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        };
        polls += 1;
        id += 1;
        if !resp.ok {
            let detail = resp
                .error
                .map(|e| e.message)
                .unwrap_or_else(|| "metrics request refused".to_string());
            return Err(detail.into());
        }
        if tail {
            if let Some(regless_json::Json::Arr(events)) = resp.payload_field("log") {
                for ev in events.iter().filter_map(LogEvent::from_json) {
                    if last_seq.is_none_or(|s| ev.seq > s) {
                        last_seq = Some(ev.seq);
                        println!("{}", ev.render());
                    }
                }
            }
        } else {
            let snap = resp
                .payload_field("metrics")
                .and_then(MetricsSnapshot::from_json)
                .ok_or("response carries no parseable metrics")?;
            match format.as_str() {
                "json" => println!("{}", resp.payload.to_string_pretty()),
                "prom" => print!("{}", snap.render_prom()),
                _ => print!("{}", snap.render_table()),
            }
        }
        if !tail && watch.is_none() {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Parse `--benches`/`--designs` into cluster work units.
fn cluster_units(
    benches: &str,
    designs: &str,
    capacity: usize,
) -> Result<Vec<regless::cluster::WorkUnit>, Box<dyn std::error::Error>> {
    use regless::bench::DesignKind;
    let bench_ids: Vec<String> = if benches.is_empty() {
        rodinia::NAMES
            .iter()
            .map(|n| regless::bench::sweep::rodinia_id(n))
            .collect()
    } else {
        benches
            .split(',')
            .map(|b| {
                let b = b.trim();
                if b.contains('/') {
                    b.to_string()
                } else {
                    regless::bench::sweep::rodinia_id(b)
                }
            })
            .collect()
    };
    for b in &bench_ids {
        if regless::bench::sweep::bench_kernel(b).is_none() {
            return Err(format!("unknown benchmark id {b:?}").into());
        }
    }
    let mut kinds = Vec::new();
    for d in designs.split(',') {
        let id = d.trim();
        let params = registry::DesignParams {
            capacity,
            ..registry::DesignParams::default()
        };
        let kind: DesignKind =
            registry::resolve(id, &params).map_err(|e| format!("cluster: {e}"))?;
        if regless::cluster::WorkUnit::new("rodinia/nn", kind).is_none() {
            return Err(format!(
                "cluster: design {id:?} is registered but not servable over the cluster wire"
            )
            .into());
        }
        kinds.push(kind);
    }
    Ok(regless::cluster::units_for(&bench_ids, &kinds))
}

/// Coordinator front door (`regless cluster`).
fn cmd_cluster(args: &[String]) -> CmdResult {
    use regless::cluster::{Coordinator, CoordinatorConfig};
    let mut config = CoordinatorConfig::default();
    let mut workers = 2usize;
    let mut spawn = false;
    let mut benches = String::new();
    let mut designs = "baseline,regless".to_string();
    let mut capacity = 512usize;
    let mut timeout_secs = 3_600u64;
    let mut digest_path: Option<String> = None;
    let mut local = false;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--workers" => workers = it.next().ok_or("--workers needs a value")?.parse()?,
            "--spawn" => spawn = true,
            "--benches" => benches = it.next().ok_or("--benches needs a value")?.clone(),
            "--designs" => designs = it.next().ok_or("--designs needs a value")?.clone(),
            "--capacity" => capacity = it.next().ok_or("--capacity needs a value")?.parse()?,
            "--liveness-ms" => {
                let ms: u64 = it.next().ok_or("--liveness-ms needs a value")?.parse()?;
                config.liveness_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--timeout-secs" => {
                timeout_secs = it.next().ok_or("--timeout-secs needs a value")?.parse()?;
            }
            "--digest" => digest_path = Some(it.next().ok_or("--digest needs a value")?.clone()),
            "--local" => local = true,
            "--json" => json = true,
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a value")?.clone());
            }
            "--progress" => config.progress = true,
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    if local && trace_out.is_some() {
        return Err("--trace-out needs the coordinator (drop --local)".into());
    }
    let units = cluster_units(&benches, &designs, capacity)?;
    if units.is_empty() {
        return Err("cluster: empty sweep space".into());
    }
    let engine = Arc::new(regless::bench::sweep::SweepEngine::from_env());
    let started = std::time::Instant::now();

    if local {
        // The single-process comparison arm: same units, same engine,
        // same digest format — what CI diffs cluster output against.
        let jobs: Vec<(String, regless::bench::sweep::RunVariant)> = units
            .iter()
            .map(|u| (u.bench.clone(), u.variant()))
            .collect();
        if config.progress {
            let meter = regless::telemetry::ProgressMeter::new(jobs.len() as u64);
            engine.prefetch_with_progress(&jobs, Some(&meter));
        } else {
            engine.prefetch(&jobs);
        }
        let mut summary = regless::cluster::ClusterSummary {
            units_total: units.len() as u64,
            units_done: units.len() as u64,
            ..Default::default()
        };
        summary.wall_seconds = started.elapsed().as_secs_f64();
        finish_cluster(&engine, &units, &summary, digest_path.as_deref(), json)?;
        return Ok(());
    }

    let handle = Coordinator::start(config.clone(), Arc::clone(&engine), units.clone())?;
    eprintln!("regless-cluster coordinating on {}", handle.addr());
    let mut children = Vec::new();
    if spawn {
        let exe = std::env::current_exe()?;
        for i in 0..workers.max(1) {
            let name = format!("w{i}");
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("worker")
                .arg("--connect")
                .arg(handle.addr().to_string())
                .arg("--name")
                .arg(&name)
                .stdout(std::process::Stdio::null());
            // Disjoint per-worker disk caches: consistent-hash assignment
            // keeps each one hot across runs.
            if let Ok(base) = std::env::var("REGLESS_SWEEP_DIR") {
                cmd.env("REGLESS_SWEEP_DIR", format!("{base}/worker-{name}"));
            }
            children.push(cmd.spawn()?);
        }
    }
    let complete = handle.wait(std::time::Duration::from_secs(timeout_secs));
    // Stop the stopwatch when the sweep completes: the drain handshake and
    // child teardown below are shutdown cost, not sweep wall-clock.
    let wall_seconds = started.elapsed().as_secs_f64();
    handle.drain();
    for mut child in children {
        let _ = child.wait();
    }
    let mut summary = handle.summary();
    summary.wall_seconds = wall_seconds;
    if let Some(path) = &trace_out {
        // One claim→result span per merged unit, every worker process on
        // one timeline — loadable in Perfetto next to a serve trace.
        let spans = handle.spans();
        write_output(
            path,
            &regless::telemetry::chrome_spans(&spans).to_string_compact(),
        )?;
        eprintln!("wrote {} claim\u{2192}result spans to {path}", spans.len());
    }
    handle.stop();
    if !complete {
        eprint!("{}", summary.render());
        return Err(format!(
            "cluster sweep incomplete: {}/{} units after {timeout_secs} s",
            summary.units_done, summary.units_total
        )
        .into());
    }
    finish_cluster(&engine, &units, &summary, digest_path.as_deref(), json)
}

/// Shared tail of `regless cluster` and `regless cluster --local`: write
/// the digest, print the summary.
fn finish_cluster(
    engine: &regless::bench::sweep::SweepEngine,
    units: &[regless::cluster::WorkUnit],
    summary: &regless::cluster::ClusterSummary,
    digest_path: Option<&str>,
    json: bool,
) -> CmdResult {
    if let Some(path) = digest_path {
        let lines = regless::cluster::merge::digest_lines(engine, units)
            .map_err(|missing| format!("digest incomplete; missing {} units", missing.len()))?;
        write_output(path, &regless::cluster::merge::render_digest(&lines))?;
        eprintln!("wrote digest of {} units to {path}", lines.len());
    }
    eprint!("{}", summary.render());
    if json {
        println!("{}", summary.to_json().to_string_pretty());
    }
    Ok(())
}

/// Worker front door (`regless worker`).
fn cmd_worker(args: &[String]) -> CmdResult {
    use regless::cluster::WorkerConfig;
    let mut config = WorkerConfig::new(
        regless::cluster::DEFAULT_CLUSTER_ADDR,
        &format!("w{}", std::process::id()),
    );
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => {
                config.coordinator = it.next().ok_or("--connect needs a value")?.clone();
            }
            "--name" => config.name = it.next().ok_or("--name needs a value")?.clone(),
            "--fail-after" => {
                config.fail_after = Some(it.next().ok_or("--fail-after needs a value")?.parse()?);
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let engine = regless::bench::sweep::SweepEngine::from_env();
    let summary = regless::cluster::run_worker(&config, &engine)?;
    eprintln!(
        "worker {} done: {} units completed, {} reconnect attempt(s){}",
        summary.name,
        summary.completed,
        summary.reconnects,
        if summary.injected_failure {
            " (injected failure)"
        } else {
            ""
        }
    );
    Ok(())
}

/// Print the sweep engine's cache report (`regless sweep --stats`), as
/// text or machine-readable JSON (`--format json`).
fn cmd_sweep_stats(args: &[String]) -> CmdResult {
    let mut format = "text".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let engine = regless::bench::sweep::engine();
    match format.as_str() {
        "text" => {
            println!("{}", engine.stats().summary_line());
            print!("{}", engine.cache_dir_report());
        }
        "json" => println!("{}", engine.cache_stats_json().to_string_pretty()),
        other => return Err(format!("unknown format {other:?} (text|json)").into()),
    }
    Ok(())
}

/// Prune orphaned fingerprint directories (`regless sweep --gc`), or just
/// list them when `dry_run` (`--gc --dry-run`).
fn cmd_sweep_gc(dry_run: bool) -> CmdResult {
    let engine = regless::bench::sweep::engine();
    if dry_run {
        let orphans = engine.list_orphans()?;
        if orphans.is_empty() {
            println!("no orphaned cache directories");
        } else {
            let mut bytes = 0u64;
            for o in &orphans {
                println!(
                    "would remove orphan {} ({} entries, {})",
                    o.name,
                    o.entries,
                    regless::telemetry::format_bytes(o.bytes)
                );
                bytes += o.bytes;
            }
            println!(
                "dry run: {} directories, {} reclaimable (run `regless sweep --gc` to delete)",
                orphans.len(),
                regless::telemetry::format_bytes(bytes)
            );
        }
        return Ok(());
    }
    let gc = engine.gc_orphans()?;
    if gc.removed.is_empty() {
        println!("no orphaned cache directories");
    } else {
        for name in &gc.removed {
            println!("removed orphan {name}");
        }
        println!(
            "freed {} across {} directories",
            regless::telemetry::format_bytes(gc.bytes_freed),
            gc.removed.len()
        );
    }
    print!("{}", engine.cache_dir_report());
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CmdResult {
    match args.first().map(String::as_str) {
        Some("--stats") => return cmd_sweep_stats(&args[1..]),
        Some("--gc") => {
            return cmd_sweep_gc(args.get(1).map(String::as_str) == Some("--dry-run"));
        }
        _ => {}
    }
    let spec = args
        .first()
        .ok_or("sweep: missing kernel (or --stats/--gc)")?;
    let mut progress = false;
    for a in &args[1..] {
        match a.as_str() {
            "--progress" => progress = true,
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let kernel = load_kernel(spec)?;
    let gpu = GpuConfig::gtx980_single_sm();
    // The sweep is 8 units: the baseline plus seven OSU capacities.
    let meter = progress.then(|| regless::telemetry::ProgressMeter::new(8));
    let note = |meter: &Option<regless::telemetry::ProgressMeter>, cycles: u64| {
        if let Some(m) = meter {
            eprintln!("[sweep] {}", m.note(cycles).render());
        }
    };
    let base = run_baseline(gpu, Arc::new(compile(&kernel, &RegionConfig::default())?))?;
    note(&meter, base.cycles);
    println!(
        "kernel `{}`: baseline {} cycles\n{:>10} {:>11} {:>12}",
        kernel.name(),
        base.cycles,
        "entries",
        "run time",
        "GPU energy"
    );
    let base_e = energy(&base, Design::Baseline, &gpu).total_pj();
    for entries in [128, 192, 256, 384, 512, 1024, 2048] {
        let cfg = RegLessConfig::with_capacity(entries);
        let compiled = compile(&kernel, &cfg.region_config(&gpu))?;
        let r = RegLessSim::new(gpu, cfg, compiled).run()?;
        note(&meter, r.cycles);
        let e = energy(
            &r,
            Design::RegLess {
                osu_entries_per_sm: entries,
            },
            &gpu,
        );
        println!(
            "{:>10} {:>10.3}x {:>11.3}x",
            entries,
            r.cycles as f64 / base.cycles as f64,
            e.total_pj() / base_e
        );
    }
    Ok(())
}

/// The perf-trend observatory (`regless trends`): distill the benchmark
/// artifacts into append-only trend rows, gate on rolling-median
/// regressions, and render the HTML dashboard. The gate runs *after* the
/// dashboard is written so a failing CI job still uploads the artifact
/// that explains the failure.
fn cmd_trends(args: &[String]) -> CmdResult {
    use regless::telemetry::{
        detect_regressions, ingest, parse_trends, render_trends_html, trends_table,
    };
    let mut results_dir = "results".to_string();
    let mut history = "results/trends.jsonl".to_string();
    let mut fail_above: Option<f64> = None;
    let mut html_out: Option<String> = None;
    let mut no_ingest = false;
    let mut window = 8usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--results" => results_dir = it.next().ok_or("--results needs a value")?.clone(),
            "--history" => history = it.next().ok_or("--history needs a value")?.clone(),
            "--fail-above" => {
                fail_above = Some(it.next().ok_or("--fail-above needs a value")?.parse()?);
            }
            "--html" => html_out = Some(it.next().ok_or("--html needs a value")?.clone()),
            "--no-ingest" => no_ingest = true,
            "--window" => {
                window = it.next().ok_or("--window needs a value")?.parse()?;
                if window < 2 {
                    return Err("--window must be at least 2".into());
                }
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }

    if !no_ingest {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let sources = [
            ("profile", "BENCH_profile.json"),
            ("sim_speed", "BENCH_sim_speed.json"),
            ("serve", "BENCH_serve.json"),
            ("cluster", "BENCH_cluster.json"),
        ];
        let mut lines = String::new();
        let mut appended = 0usize;
        for (source, file) in sources {
            let path = std::path::Path::new(&results_dir).join(file);
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // absent artifacts are normal: ingest what exists
            };
            let Ok(json) = regless_json::Json::parse(&text) else {
                eprintln!("warning: {} is not valid JSON; skipped", path.display());
                continue;
            };
            for mut point in ingest(source, &json) {
                point.ts = ts;
                lines.push_str(&point.to_jsonl_line());
                lines.push('\n');
                appended += 1;
            }
        }
        if appended > 0 {
            if let Some(parent) = std::path::Path::new(&history).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            use std::io::Write as _;
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&history)?
                .write_all(lines.as_bytes())?;
        }
        eprintln!("ingested {appended} metric rows into {history}");
    }

    let points = parse_trends(&std::fs::read_to_string(&history).unwrap_or_default());
    print!("{}", trends_table(&points, window));
    if let Some(path) = &html_out {
        write_output(path, &render_trends_html(&points, window))?;
        eprintln!("wrote trend dashboard to {path}");
    }
    if let Some(threshold) = fail_above {
        let regressions = detect_regressions(&points, window, threshold);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("{}", r.render(threshold));
            }
            std::process::exit(1);
        }
        eprintln!("trend gate: no metric is {threshold}% worse than its rolling median");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::write_output;

    #[test]
    fn write_output_creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("regless-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nested = dir.join("a/b/c.txt");
        let path = nested.to_str().unwrap();
        write_output(path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "hello");
        // Overwrites in place on the second call.
        write_output(path, "again").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "again");
        // Bare file names (no parent) also work.
        let cwd_ok = write_output(dir.join("top.txt").to_str().unwrap(), "x");
        assert!(cwd_ok.is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
